package router

import (
	"sort"
	"sync"

	"repro/internal/obs"
)

// ewmaAlpha is the weight of the newest observation once a cell is past its
// warmup: high enough to track drift (a growing dataset, changing machine
// load), low enough that one noisy query does not flip routing.
const ewmaAlpha = 0.2

// coldThreshold is the observation count below which a cell's estimate is
// considered cold: the learned policy then falls back to the static
// heuristic ranking instead of trusting one or two samples.
const coldThreshold = 3

// LatencyFamily is the metrics family name backing the cost model: one
// EWMA histogram per (bucket, method) cell. The learned policy reads its
// estimates out of these histograms, so /metrics exposes exactly the
// numbers routing decisions run on.
const LatencyFamily = "sq_router_latency_seconds"

// model is the per-feature-bucket online cost model: for every bucket it
// tracks each method's observed end-to-end query latency in an EWMA-
// carrying histogram (obs.Histogram), one cell per (bucket, method). It is
// the shared mutable state of the learned and race policies and is safe
// for concurrent use.
type model struct {
	fam *obs.Family

	mu    sync.Mutex
	cells map[Bucket]map[string]*obs.Histogram // bucket -> canonical method name
}

// newModel builds the cost model on reg's latency family (nil reg = a
// private registry, for callers that do not export metrics).
func newModel(reg *obs.Registry) *model {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	fam := reg.HistogramEWMA(LatencyFamily,
		"Routed query latency per (feature bucket, method); each cell's EWMA is the learned policy's cost estimate.",
		nil, ewmaAlpha, coldThreshold, "bucket", "method")
	return &model{fam: fam, cells: make(map[Bucket]map[string]*obs.Histogram)}
}

// cell returns the histogram for (b, method), creating it on first use.
func (m *model) cell(b Bucket, method string) *obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	byMethod := m.cells[b]
	if byMethod == nil {
		byMethod = make(map[string]*obs.Histogram)
		m.cells[b] = byMethod
	}
	h := byMethod[method]
	if h == nil {
		h = m.fam.Histogram(b.String(), method)
		byMethod[method] = h
	}
	return h
}

// observe records one served query's latency for (b, method).
func (m *model) observe(b Bucket, method string, seconds float64) {
	if seconds < 0 {
		return
	}
	m.cell(b, method).Observe(seconds)
}

// estimate returns the current latency estimate for (b, method) and how
// many observations back it. n == 0 means never observed.
func (m *model) estimate(b Bucket, method string) (seconds float64, n int64) {
	m.mu.Lock()
	h := m.cells[b][method]
	m.mu.Unlock()
	if h == nil {
		return 0, 0
	}
	n, mean := h.EWMA()
	return mean, n
}

// CellSnapshot is one (bucket, method) cost-model cell in observable form,
// used by /stats and by model persistence.
type CellSnapshot struct {
	Bucket      Bucket  `json:"bucket"`
	Method      string  `json:"method"`
	N           int64   `json:"n"`
	MeanSeconds float64 `json:"mean_seconds"`
}

// snapshot returns every cell with at least one observation, in a
// deterministic order (bucket, then method).
func (m *model) snapshot() []CellSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []CellSnapshot
	for b, byMethod := range m.cells {
		for name, h := range byMethod {
			n, mean := h.EWMA()
			if n == 0 {
				continue
			}
			out = append(out, CellSnapshot{Bucket: b, Method: name, N: n, MeanSeconds: mean})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i].Bucket, out[j].Bucket
		if bi != bj {
			if bi.Size != bj.Size {
				return bi.Size < bj.Size
			}
			if bi.Shape != bj.Shape {
				return bi.Shape < bj.Shape
			}
			return bi.Rarity < bj.Rarity
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// restore seeds the model from persisted cells, keeping only methods in
// known (the router's current method set) — a persisted model from an older
// configuration must not inject estimates for methods that no longer exist.
// Only the EWMA state is seeded: bucket counts restart at zero, so restored
// histograms report post-restart traffic while estimates stay warm.
func (m *model) restore(cells []CellSnapshot, known map[string]bool) {
	for _, cs := range cells {
		if cs.N <= 0 || !known[cs.Method] {
			continue
		}
		m.cell(cs.Bucket, cs.Method).SeedEWMA(cs.N, cs.MeanSeconds)
	}
}
