package router

import (
	"sort"
	"sync"
)

// ewmaAlpha is the weight of the newest observation once a cell is past its
// warmup: high enough to track drift (a growing dataset, changing machine
// load), low enough that one noisy query does not flip routing.
const ewmaAlpha = 0.2

// coldThreshold is the observation count below which a cell's estimate is
// considered cold: the learned policy then falls back to the static
// heuristic ranking instead of trusting one or two samples.
const coldThreshold = 3

// cell accumulates one (bucket, method) pair's latency observations: a
// plain running mean during warmup, an exponential moving average after.
type cell struct {
	n    int64
	mean float64 // seconds
}

func (c *cell) observe(seconds float64) {
	c.n++
	if c.n <= coldThreshold {
		c.mean += (seconds - c.mean) / float64(c.n)
		return
	}
	c.mean += ewmaAlpha * (seconds - c.mean)
}

// model is the per-feature-bucket online cost model: for every bucket it
// tracks each method's observed end-to-end query latency. It is the shared
// mutable state of the learned and race policies and is safe for concurrent
// use.
type model struct {
	mu    sync.Mutex
	cells map[Bucket]map[string]*cell // bucket -> canonical method name
}

func newModel() *model {
	return &model{cells: make(map[Bucket]map[string]*cell)}
}

// observe records one served query's latency for (b, method).
func (m *model) observe(b Bucket, method string, seconds float64) {
	if seconds < 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	byMethod := m.cells[b]
	if byMethod == nil {
		byMethod = make(map[string]*cell)
		m.cells[b] = byMethod
	}
	c := byMethod[method]
	if c == nil {
		c = &cell{}
		byMethod[method] = c
	}
	c.observe(seconds)
}

// estimate returns the current latency estimate for (b, method) and how
// many observations back it. n == 0 means never observed.
func (m *model) estimate(b Bucket, method string) (seconds float64, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c := m.cells[b][method]; c != nil {
		return c.mean, c.n
	}
	return 0, 0
}

// CellSnapshot is one (bucket, method) cost-model cell in observable form,
// used by /stats and by model persistence.
type CellSnapshot struct {
	Bucket      Bucket  `json:"bucket"`
	Method      string  `json:"method"`
	N           int64   `json:"n"`
	MeanSeconds float64 `json:"mean_seconds"`
}

// snapshot returns every cell with at least one observation, in a
// deterministic order (bucket, then method).
func (m *model) snapshot() []CellSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []CellSnapshot
	for b, byMethod := range m.cells {
		for name, c := range byMethod {
			if c.n == 0 {
				continue
			}
			out = append(out, CellSnapshot{Bucket: b, Method: name, N: c.n, MeanSeconds: c.mean})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i].Bucket, out[j].Bucket
		if bi != bj {
			if bi.Size != bj.Size {
				return bi.Size < bj.Size
			}
			if bi.Shape != bj.Shape {
				return bi.Shape < bj.Shape
			}
			return bi.Rarity < bj.Rarity
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// restore seeds the model from persisted cells, keeping only methods in
// known (the router's current method set) — a persisted model from an older
// configuration must not inject estimates for methods that no longer exist.
func (m *model) restore(cells []CellSnapshot, known map[string]bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, cs := range cells {
		if cs.N <= 0 || !known[cs.Method] {
			continue
		}
		byMethod := m.cells[cs.Bucket]
		if byMethod == nil {
			byMethod = make(map[string]*cell)
			m.cells[cs.Bucket] = byMethod
		}
		byMethod[cs.Method] = &cell{n: cs.N, mean: cs.MeanSeconds}
	}
}
