package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/graph"
)

// manifestMagic heads the router manifest file; bump the version when the
// layout changes. v2 added the dataset epoch, so per-method files
// persisted before a mutation can never restore silently against the
// mutated dataset.
const manifestMagic = "repro-router v2"

// modelMagic identifies the persisted cost-model document.
const modelMagic = "repro-router-model v1"

// MethodIndexPath returns the file path method name's index persists at
// under a router index rooted at base: "<base>.method-<name>". The manifest
// lives at base itself, and a sharded sub-engine nests its own shard files
// under this path ("<base>.method-<name>.shard-<i>").
func MethodIndexPath(base, name string) string {
	return fmt.Sprintf("%s.method-%s", base, name)
}

// ModelPath returns the file path the learned cost model persists at under
// a router index rooted at base.
func ModelPath(base string) string { return base + ".model" }

// manifest renders the router manifest: a short text file binding the
// per-method index files to the method set, dataset size, epoch and
// structural version tag, and shard count they were written for.
func manifest(names []string, ds *graph.Dataset, shards int) string {
	if shards < 2 {
		shards = 0 // 0 and 1 both mean unsharded sub-engines
	}
	return fmt.Sprintf("%s\nmethods %s\ngraphs %d\nepoch %d\ntag %x\nshards %d\n",
		manifestMagic, strings.Join(names, "+"), ds.Len(), ds.Epoch(), ds.VersionTag(), shards)
}

// manifestMatches reports whether the manifest at base matches this
// router's configuration. A missing manifest is a mismatch (rebuild
// everything); a present-but-unreadable one is an error, mirroring the
// engine's persistence policy.
func manifestMatches(base string, names []string, ds *graph.Dataset, shards int) (bool, error) {
	data, err := os.ReadFile(base)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("router: opening manifest at %s: %w", base, err)
	}
	return string(data) == manifest(names, ds, shards), nil
}

// writeManifest atomically writes the manifest at base, after every
// per-method index has been persisted — a crash mid-save leaves either the
// old manifest (stale per-method files fail their own loads and rebuild) or
// none (full rebuild), never a manifest endorsing files that were not all
// written.
func writeManifest(base string, names []string, ds *graph.Dataset, shards int) error {
	return engine.AtomicWriteFile(base, func(w io.Writer) error {
		_, err := io.WriteString(w, manifest(names, ds, shards))
		return err
	})
}

// removeStale deletes the per-method index files and the model file under
// base. It runs when the manifest does not endorse them: a per-method file
// persisted for a different dataset could otherwise restore loadably but
// wrongly. Removal errors are ignored — a file that cannot be removed will
// fail its load or be overwritten by the rebuild's atomic save.
func removeStale(base string, names []string) {
	for _, name := range names {
		os.Remove(MethodIndexPath(base, name))
	}
	os.Remove(ModelPath(base))
}

// modelDoc is the persisted form of the learned cost model.
type modelDoc struct {
	Magic string         `json:"magic"`
	Cells []CellSnapshot `json:"cells"`
}

// SaveModel atomically persists the learned cost model at
// ModelPath(base), so a restart resumes routing with warm estimates
// instead of re-exploring from the static heuristics.
func (m *Multi) SaveModel(base string) error {
	doc := modelDoc{Magic: modelMagic, Cells: m.mdl.snapshot()}
	return engine.AtomicWriteFile(ModelPath(base), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}

// Save persists the router's routing state under base: the manifest
// endorsing the per-method index files (which the sub-engines already wrote
// at open time) and the learned cost model. Use it on graceful shutdown so
// the next Open restores both the indexes and the warm routing estimates.
func (m *Multi) Save(base string) error {
	if err := writeManifest(base, m.names, m.ds, m.shardsHint()); err != nil {
		return err
	}
	return m.SaveModel(base)
}

// shardsHint recovers the sub-engines' shard count for the manifest (0 for
// unsharded subs).
func (m *Multi) shardsHint() int {
	for _, sub := range m.subs {
		if s, ok := sub.(*engine.Sharded); ok {
			return s.Shards()
		}
	}
	return 0
}

// loadModel best-effort restores the cost model from path: a missing,
// unreadable, corrupt, or mismatched file leaves the model cold, exactly
// as if no traffic had been observed yet.
func (m *Multi) loadModel(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var doc modelDoc
	if json.Unmarshal(data, &doc) != nil || doc.Magic != modelMagic {
		return
	}
	known := make(map[string]bool, len(m.names))
	for _, name := range m.names {
		known[name] = true
	}
	m.mdl.restore(doc.Cells, known)
}
