package router

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// featureDS builds a dataset with a skewed label distribution: label 0 in
// every graph, label 1 in half, label 2 in one graph out of ten.
func featureDS() *graph.Dataset {
	ds := graph.NewDataset("features")
	for i := 0; i < 10; i++ {
		g := graph.New(0)
		a := g.AddVertex(0)
		l := graph.Label(0)
		if i%2 == 0 {
			l = 1
		}
		b := g.AddVertex(l)
		g.MustAddEdge(a, b)
		if i == 0 {
			c := g.AddVertex(2)
			g.MustAddEdge(b, c)
		}
		ds.Add(g)
	}
	return ds
}

func line(n int) *graph.Graph {
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddVertex(0)
	}
	for i := int32(0); int(i) < n-1; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

func TestExtractShapes(t *testing.T) {
	e := NewExtractor(featureDS())

	path := line(4)
	f := e.Extract(path)
	if f.Shape != ShapePath || f.Cyclomatic != 0 || f.Components != 1 {
		t.Errorf("path: %+v", f)
	}

	star := graph.New(0)
	c := star.AddVertex(0)
	for i := 0; i < 3; i++ {
		star.MustAddEdge(c, star.AddVertex(0))
	}
	f = e.Extract(star)
	if f.Shape != ShapeTree || f.MaxDegree != 3 || f.Cyclomatic != 0 {
		t.Errorf("star: %+v", f)
	}

	tri := graph.New(0)
	a, b, d := tri.AddVertex(0), tri.AddVertex(0), tri.AddVertex(0)
	tri.MustAddEdge(a, b)
	tri.MustAddEdge(b, d)
	tri.MustAddEdge(d, a)
	f = e.Extract(tri)
	if f.Shape != ShapeCyclic || f.Cyclomatic != 1 {
		t.Errorf("triangle: %+v", f)
	}

	// Two disconnected edges: cyclomatic stays 0 through the component
	// count.
	two := graph.New(0)
	two.MustAddEdge(two.AddVertex(0), two.AddVertex(0))
	two.MustAddEdge(two.AddVertex(0), two.AddVertex(0))
	f = e.Extract(two)
	if f.Components != 2 || f.Cyclomatic != 0 || f.Shape != ShapePath {
		t.Errorf("two components: %+v", f)
	}
}

func TestExtractLabelRarity(t *testing.T) {
	e := NewExtractor(featureDS())
	q := graph.New(0)
	q.MustAddEdge(q.AddVertex(0), q.AddVertex(2)) // common + rare
	f := e.Extract(q)
	if f.MinLabelFreq != 0.1 {
		t.Errorf("MinLabelFreq = %g, want 0.1", f.MinLabelFreq)
	}
	if f.AvgLabelFreq != (1.0+0.1)/2 {
		t.Errorf("AvgLabelFreq = %g, want 0.55", f.AvgLabelFreq)
	}
	// A label the dataset never uses has frequency 0.
	q2 := graph.New(0)
	q2.MustAddEdge(q2.AddVertex(0), q2.AddVertex(99))
	if f := e.Extract(q2); f.MinLabelFreq != 0 {
		t.Errorf("unknown label: MinLabelFreq = %g, want 0", f.MinLabelFreq)
	}
}

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		edges  int
		freq   float64
		shape  Shape
		bucket Bucket
	}{
		{4, 0.5, ShapePath, Bucket{Size: 0, Shape: ShapePath, Rarity: 1}},
		{5, 0.1, ShapeTree, Bucket{Size: 1, Shape: ShapeTree, Rarity: 0}},
		{16, 0.9, ShapeCyclic, Bucket{Size: 2, Shape: ShapeCyclic, Rarity: 2}},
		{17, 0.75, ShapePath, Bucket{Size: 3, Shape: ShapePath, Rarity: 2}},
	}
	for _, tc := range cases {
		f := Features{Edges: tc.edges, MinLabelFreq: tc.freq, Shape: tc.shape}
		if got := f.Bucket(); got != tc.bucket {
			t.Errorf("Bucket(%+v) = %+v, want %+v", f, got, tc.bucket)
		}
	}
	if s := (Bucket{Size: 2, Shape: ShapeTree, Rarity: 1}).String(); s != "s2/tree/r1" {
		t.Errorf("Bucket.String() = %q", s)
	}
}

func TestStaticRankPrefersRegime(t *testing.T) {
	names := []string{"grapes", "ggsx", "ctindex", "gcode", "treedelta"}
	pick := func(f Features) string { return names[staticRank(f, names)[0]] }

	if got := pick(Features{Edges: 4, MinLabelFreq: 0.1}); got != "gcode" {
		t.Errorf("rare label routes to %s, want gcode", got)
	}
	if got := pick(Features{Edges: 8, MinLabelFreq: 0.9, Shape: ShapeCyclic}); got != "grapes" {
		t.Errorf("cyclic routes to %s, want grapes", got)
	}
	if got := pick(Features{Edges: 8, MinLabelFreq: 0.9, Shape: ShapeTree}); got != "treedelta" {
		t.Errorf("tree routes to %s, want treedelta", got)
	}
	if got := pick(Features{Edges: 4, MinLabelFreq: 0.9, Shape: ShapePath}); got != "ggsx" {
		t.Errorf("path routes to %s, want ggsx", got)
	}
	// A subset without the table's favorite falls through to the next.
	sub := []string{"ctindex", "gindex"}
	if got := sub[staticRank(Features{Edges: 8, MinLabelFreq: 0.9, Shape: ShapeTree}, sub)[0]]; got != "ctindex" {
		t.Errorf("tree subset routes to %s, want ctindex", got)
	}
	// The ranking is total: every index appears exactly once.
	order := staticRank(Features{}, names)
	if len(order) != len(names) {
		t.Fatalf("rank has %d entries, want %d", len(order), len(names))
	}
	seen := map[int]bool{}
	for _, i := range order {
		if seen[i] {
			t.Fatalf("index %d ranked twice", i)
		}
		seen[i] = true
	}
}

func TestModelWarmupThenEWMA(t *testing.T) {
	m := newModel(nil)
	b := Bucket{Size: 1, Shape: ShapePath, Rarity: 1}
	// Warmup: plain running mean over the first coldThreshold observations.
	m.observe(b, "grapes", 1.0)
	m.observe(b, "grapes", 3.0)
	if mean, n := m.estimate(b, "grapes"); n != 2 || mean != 2.0 {
		t.Fatalf("warmup estimate = (%g, %d), want (2, 2)", mean, n)
	}
	m.observe(b, "grapes", 2.0)
	mean, n := m.estimate(b, "grapes")
	if n != 3 || mean != 2.0 {
		t.Fatalf("post-warmup estimate = (%g, %d), want (2, 3)", mean, n)
	}
	// Past warmup: exponential moving average.
	m.observe(b, "grapes", 12.0)
	if mean, _ := m.estimate(b, "grapes"); mean != 2.0+ewmaAlpha*10 {
		t.Fatalf("EWMA estimate = %g, want %g", mean, 2.0+ewmaAlpha*10)
	}
	// Unobserved cells report cold.
	if _, n := m.estimate(b, "ggsx"); n != 0 {
		t.Fatalf("unobserved cell has n = %d", n)
	}
	// Negative observations are dropped, not absorbed.
	m.observe(b, "grapes", -1)
	if _, n := m.estimate(b, "grapes"); n != 4 {
		t.Fatalf("negative observation changed n to %d", n)
	}
}

func TestModelSnapshotRestore(t *testing.T) {
	m := newModel(nil)
	b := Bucket{Size: 0, Shape: ShapeTree, Rarity: 2}
	m.observe(b, "grapes", 1.5)
	m.observe(b, "gone", 9)
	snap := m.snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d cells, want 2", len(snap))
	}
	restored := newModel(nil)
	restored.restore(snap, map[string]bool{"grapes": true})
	if mean, n := restored.estimate(b, "grapes"); n != 1 || mean != 1.5 {
		t.Errorf("restored grapes = (%g, %d), want (1.5, 1)", mean, n)
	}
	if _, n := restored.estimate(b, "gone"); n != 0 {
		t.Errorf("restore kept a cell for an unknown method")
	}
}

func TestLearnedRankColdThenGreedy(t *testing.T) {
	names := []string{"grapes", "ggsx", "gcode"}
	f := Features{Edges: 4, MinLabelFreq: 0.9, Shape: ShapePath}
	b := f.Bucket()
	mdl := newModel(nil)
	rng := rand.New(rand.NewSource(1))

	// All cold: exploration is forced and follows the static preference
	// (ggsx first for small paths).
	order, explored := learnedRank(f, names, mdl, 0, rng)
	if !explored || names[order[0]] != "ggsx" {
		t.Fatalf("cold rank = %v (explored=%v), want ggsx first via static order", order, explored)
	}

	// Warm every cell with distinct latencies; greedy picks the cheapest.
	for i, name := range names {
		for k := 0; k < coldThreshold; k++ {
			mdl.observe(b, name, float64(3-i)) // gcode cheapest
		}
	}
	order, explored = learnedRank(f, names, mdl, 0, rng)
	if explored || names[order[0]] != "gcode" {
		t.Fatalf("warm rank = %v (explored=%v), want greedy gcode", order, explored)
	}

	// Epsilon 1 always explores once warm.
	_, explored = learnedRank(f, names, mdl, 1, rng)
	if !explored {
		t.Fatal("epsilon=1 did not explore")
	}

	// Partially cold: the cold method ranks first regardless of estimates.
	mdl2 := newModel(nil)
	for k := 0; k < coldThreshold; k++ {
		mdl2.observe(b, "grapes", 0.001)
		mdl2.observe(b, "ggsx", 0.002)
	}
	order, explored = learnedRank(f, names, mdl2, 0, rng)
	if !explored || names[order[0]] != "gcode" {
		t.Fatalf("partial-cold rank = %v, want cold gcode forced first", order)
	}
}

func TestPolicyPicks(t *testing.T) {
	names := []string{"grapes", "ggsx", "gcode"}
	f := Features{Edges: 4, MinLabelFreq: 0.9, Shape: ShapePath}
	mdl := newModel(nil)
	rng := rand.New(rand.NewSource(2))

	for _, kind := range Policies() {
		p, err := newPolicy(kind, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		picks, _ := p.picks(f, names, mdl, rng)
		want := 1
		if kind == PolicyRace {
			want = 2
		}
		if len(picks) != want {
			t.Errorf("%s picked %d methods, want %d", kind, len(picks), want)
		}
		if kind == PolicyRace && picks[0] == picks[1] {
			t.Errorf("race picked the same method twice")
		}
	}
	if _, err := newPolicy("bogus", 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := newPolicy(PolicyLearned, 1.5); err == nil {
		t.Error("epsilon out of range accepted")
	}
}
