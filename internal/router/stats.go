package router

// MethodSnapshot is one routed method's counters in a stats snapshot.
type MethodSnapshot struct {
	// Method is the figure-legend display name (matching
	// QueryResult.Method).
	Method string `json:"method"`
	// Name is the canonical registry name — the join key against the
	// Model cells' CellSnapshot.Method, which persist under canonical
	// names.
	Name string `json:"name"`
	// Routed counts how often the method was chosen to run (a raced query
	// increments both contenders).
	Routed int64 `json:"routed"`
	// Won counts how often the method's result was the one served.
	Won int64 `json:"won"`
	// WinRate is Won over all served queries and streams.
	WinRate float64 `json:"win_rate"`
}

// Snapshot is the router's observable state: policy, per-method win rates,
// and the learned cost model's cells. /stats serves it and sqbench's router
// ablation reports it.
type Snapshot struct {
	Policy string `json:"policy"`
	// Queries counts served one-shot (and batched) queries; Streams counts
	// routed answer streams.
	Queries int64 `json:"queries"`
	Streams int64 `json:"streams,omitempty"`
	// Raced counts queries served by racing the top two predictions.
	Raced int64 `json:"raced,omitempty"`
	// Explored counts queries whose routing came from exploration (cold-
	// bucket warmup or an epsilon draw) rather than the greedy estimate.
	Explored int64            `json:"explored,omitempty"`
	Methods  []MethodSnapshot `json:"methods"`
	// Model lists every cost-model cell with at least one observation.
	Model []CellSnapshot `json:"model,omitempty"`
}

// Stats snapshots the router's counters and cost model.
func (m *Multi) Stats() Snapshot {
	m.statsMu.Lock()
	s := Snapshot{
		Policy:   m.pol.name(),
		Queries:  m.queries,
		Streams:  m.streams,
		Raced:    m.raced,
		Explored: m.explored,
	}
	served := m.queries + m.streams
	for i, display := range m.displays {
		ms := MethodSnapshot{Method: display, Name: m.names[i], Routed: m.routed[i], Won: m.won[i]}
		if served > 0 {
			ms.WinRate = float64(ms.Won) / float64(served)
		}
		s.Methods = append(s.Methods, ms)
	}
	m.statsMu.Unlock()
	s.Model = m.mdl.snapshot()
	return s
}
