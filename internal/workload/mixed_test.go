package workload

import (
	"testing"

	"repro/internal/subiso"
)

func TestGenerateMixedShapesAndContainment(t *testing.T) {
	ds := testDS()
	qs, err := GenerateMixed(ds, MixedConfig{NumQueries: 18, Sizes: []int{3, 6, 9}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 18 {
		t.Fatalf("got %d queries, want 18", len(qs))
	}
	sizes := map[int]int{}
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("query %d invalid: %v", i, err)
		}
		if !q.IsConnected() {
			t.Errorf("query %d disconnected", i)
		}
		sizes[q.NumEdges()]++
		found := false
		for _, g := range ds.Graphs {
			if subiso.Exists(q, g) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("query %d not contained in any dataset graph", i)
		}
	}
	// The (size, shape) grid is rotated, so every size appears equally.
	for _, size := range []int{3, 6, 9} {
		if sizes[size] != 6 {
			t.Errorf("size %d: %d queries, want 6 (got %v)", size, sizes[size], sizes)
		}
	}
}

// TestGenerateMixedShapeInvariants pins the structural guarantees of the
// dedicated shapes: path queries are simple paths, tree queries are
// acyclic, walks are whatever the dataset gives.
func TestGenerateMixedShapeInvariants(t *testing.T) {
	ds := testDS()
	paths, err := GenerateMixed(ds, MixedConfig{
		NumQueries: 8, Sizes: []int{5}, Shapes: []QueryShape{ShapePathQ}, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range paths {
		if q.NumEdges() != 5 || q.NumVertices() != 6 {
			t.Errorf("path %d: %d vertices / %d edges, want 6/5", i, q.NumVertices(), q.NumEdges())
		}
		for v := int32(0); int(v) < q.NumVertices(); v++ {
			if q.Degree(v) > 2 {
				t.Errorf("path %d: vertex %d has degree %d", i, v, q.Degree(v))
			}
		}
	}
	trees, err := GenerateMixed(ds, MixedConfig{
		NumQueries: 8, Sizes: []int{6}, Shapes: []QueryShape{ShapeTreeQ}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	branched := false
	for i, q := range trees {
		// A connected graph with |V| = |E|+1 is a tree.
		if q.NumEdges() != 6 || q.NumVertices() != 7 {
			t.Errorf("tree %d: %d vertices / %d edges, want 7/6", i, q.NumVertices(), q.NumEdges())
		}
		if !q.IsConnected() {
			t.Errorf("tree %d disconnected", i)
		}
		for v := int32(0); int(v) < q.NumVertices(); v++ {
			if q.Degree(v) > 2 {
				branched = true
			}
		}
	}
	if !branched {
		t.Error("no tree query branched; frontier expansion degenerated to paths")
	}
}

func TestGenerateMixedDeterministic(t *testing.T) {
	ds := testDS()
	a, err := GenerateMixed(ds, MixedConfig{NumQueries: 9, Sizes: []int{4, 6}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMixed(ds, MixedConfig{NumQueries: 9, Sizes: []int{4, 6}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].String() != b[i].String() || len(a[i].Edges()) != len(b[i].Edges()) {
			t.Fatalf("query %d differs across identical seeds", i)
		}
	}
}

func TestGenerateMixedErrors(t *testing.T) {
	ds := testDS()
	if _, err := GenerateMixed(ds, MixedConfig{NumQueries: 1, Sizes: []int{0}}); err == nil {
		t.Error("size 0: want error")
	}
	if _, err := GenerateMixed(ds, MixedConfig{NumQueries: 1, Sizes: []int{10_000}}); err == nil {
		t.Error("infeasible size: want error")
	}
	empty := testDS()
	empty.Graphs = nil
	if _, err := GenerateMixed(empty, MixedConfig{NumQueries: 1}); err == nil {
		t.Error("empty dataset: want error")
	}
}
