package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// QueryShape selects the extraction procedure of one mixed-workload query.
type QueryShape string

// The mixed-workload shapes. Each yields a query that is a subgraph of
// some dataset graph by construction, so every query has at least one
// answer.
const (
	// ShapeWalk is the paper's §4.3 random-walk extraction: the union of
	// the walked edges, which revisits vertices and closes cycles on
	// denser graphs.
	ShapeWalk QueryShape = "walk"
	// ShapePathQ extracts a simple path: a non-revisiting walk, so the
	// query's vertices all have degree <= 2 and no cycle exists.
	ShapePathQ QueryShape = "path"
	// ShapeTreeQ grows a random tree from a start vertex by repeatedly
	// attaching an unvisited neighbor of a random tree vertex — acyclic
	// with branching.
	ShapeTreeQ QueryShape = "tree"
)

// AllShapes lists the mixed-workload shapes in generation rotation order.
func AllShapes() []QueryShape { return []QueryShape{ShapeWalk, ShapePathQ, ShapeTreeQ} }

// MixedConfig parameterizes a mixed-shape, mixed-size query workload.
type MixedConfig struct {
	// NumQueries is the total number of queries to extract.
	NumQueries int
	// Sizes are the query edge counts to rotate through (default {4, 8, 16}).
	Sizes []int
	// Shapes are the extraction shapes to rotate through (default all).
	Shapes []QueryShape
	Seed   int64
}

// GenerateMixed extracts a workload that mixes query sizes and shapes —
// the traffic an adaptive method router is designed for, where the paper's
// per-regime winners alternate query by query. The (size, shape) grid is
// rotated deterministically and the result is shuffled, so any prefix of
// the workload is itself mixed. A (size, shape) cell the dataset cannot
// support (graphs too small, or no simple path that long) falls back to
// the plain walk shape at the same size before giving up, mirroring
// Generate's retry discipline.
func GenerateMixed(ds *graph.Dataset, cfg MixedConfig) ([]*graph.Graph, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("workload: empty dataset")
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{4, 8, 16}
	}
	if len(cfg.Shapes) == 0 {
		cfg.Shapes = AllShapes()
	}
	for _, size := range cfg.Sizes {
		if size < 1 {
			return nil, fmt.Errorf("workload: query size %d < 1", size)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*graph.Graph, 0, cfg.NumQueries)
	const maxAttemptsPerQuery = 1000
	for n := 0; len(out) < cfg.NumQueries; n++ {
		size := cfg.Sizes[n%len(cfg.Sizes)]
		shape := cfg.Shapes[(n/len(cfg.Sizes))%len(cfg.Shapes)]
		var q *graph.Graph
		for attempt := 0; attempt < maxAttemptsPerQuery; attempt++ {
			src := ds.Graphs[rng.Intn(ds.Len())]
			if q = shapedQuery(rng, src, size, shape); q != nil {
				break
			}
			if attempt == maxAttemptsPerQuery/2 && shape != ShapeWalk {
				// Halfway through the budget, concede the shape: a dataset
				// of dense blobs may have no simple 16-edge path, but a
				// 16-edge walk still exists.
				shape = ShapeWalk
			}
		}
		if q == nil {
			return nil, fmt.Errorf("workload: no graph in %q supports %d-edge %s queries", ds.Name, size, shape)
		}
		out = append(out, q)
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// shapedQuery extracts one query of the given shape and size from src, or
// nil if this extraction attempt failed.
func shapedQuery(rng *rand.Rand, src *graph.Graph, edges int, shape QueryShape) *graph.Graph {
	switch shape {
	case ShapePathQ:
		return pathQuery(rng, src, edges)
	case ShapeTreeQ:
		return treeQuery(rng, src, edges)
	default:
		return walkQuery(rng, src, edges)
	}
}

// pathQuery extracts a simple path with exactly the requested edge count: a
// random walk that never revisits a vertex, restarting costs nothing
// because failures return nil and the caller retries on a fresh graph.
func pathQuery(rng *rand.Rand, src *graph.Graph, edges int) *graph.Graph {
	if src.NumVertices() < edges+1 || src.NumEdges() < edges {
		return nil
	}
	cur := int32(rng.Intn(src.NumVertices()))
	q := graph.New(0)
	onPath := map[int32]int32{cur: q.AddVertex(src.Label(cur))}
	for q.NumEdges() < edges {
		nb := src.Neighbors(cur)
		// Collect the unvisited extensions; a dead end fails the attempt.
		var ext []int32
		for _, w := range nb {
			if _, seen := onPath[w]; !seen {
				ext = append(ext, w)
			}
		}
		if len(ext) == 0 {
			return nil
		}
		next := ext[rng.Intn(len(ext))]
		nv := q.AddVertex(src.Label(next))
		q.MustAddEdge(onPath[cur], nv)
		onPath[next] = nv
		cur = next
	}
	return q
}

// treeQuery grows a random subtree with exactly the requested edge count by
// frontier expansion: each step attaches an unvisited src-neighbor of a
// uniformly random tree vertex, so the query branches but never closes a
// cycle.
func treeQuery(rng *rand.Rand, src *graph.Graph, edges int) *graph.Graph {
	if src.NumVertices() < edges+1 || src.NumEdges() < edges {
		return nil
	}
	start := int32(rng.Intn(src.NumVertices()))
	q := graph.New(0)
	old2new := map[int32]int32{start: q.AddVertex(src.Label(start))}
	members := []int32{start}
	for q.NumEdges() < edges {
		// Uniform random tree vertex with at least one unvisited neighbor;
		// vertices without one are dropped from the candidate list.
		grown := false
		for len(members) > 0 && !grown {
			mi := rng.Intn(len(members))
			v := members[mi]
			var ext []int32
			for _, w := range src.Neighbors(v) {
				if _, seen := old2new[w]; !seen {
					ext = append(ext, w)
				}
			}
			if len(ext) == 0 {
				members[mi] = members[len(members)-1]
				members = members[:len(members)-1]
				continue
			}
			next := ext[rng.Intn(len(ext))]
			nv := q.AddVertex(src.Label(next))
			q.MustAddEdge(old2new[v], nv)
			old2new[next] = nv
			members = append(members, next)
			grown = true
		}
		if !grown {
			return nil // the whole reachable component is in the tree
		}
	}
	return q
}
