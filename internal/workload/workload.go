// Package workload generates subgraph query workloads by the random-walk
// procedure of §4.3 of the paper, and computes the workload-level false
// positive ratio metric of equation (3).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Config parameterizes a query workload.
type Config struct {
	// NumQueries is the number of query graphs to extract.
	NumQueries int
	// QueryEdges is the desired query size in edges (paper: 4, 8, 16, 32).
	QueryEdges int
	Seed       int64
}

// Generate extracts NumQueries query graphs from ds:
//
//  1. select a graph uniformly at random;
//  2. select a start vertex uniformly at random;
//  3. random-walk from it, keeping the union of visited vertices and
//     travelled edges;
//  4. stop when the desired edge count is reached.
//
// Walks landing in components too small to yield the requested size are
// retried on a fresh graph, so every returned query has exactly
// cfg.QueryEdges edges and is contained in at least one dataset graph by
// construction.
func Generate(ds *graph.Dataset, cfg Config) ([]*graph.Graph, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("workload: empty dataset")
	}
	if cfg.QueryEdges < 1 {
		return nil, fmt.Errorf("workload: query size %d < 1", cfg.QueryEdges)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*graph.Graph, 0, cfg.NumQueries)
	const maxAttemptsPerQuery = 1000
	for len(out) < cfg.NumQueries {
		var q *graph.Graph
		for attempt := 0; attempt < maxAttemptsPerQuery; attempt++ {
			src := ds.Graphs[rng.Intn(ds.Len())]
			if q = walkQuery(rng, src, cfg.QueryEdges); q != nil {
				break
			}
		}
		if q == nil {
			return nil, fmt.Errorf("workload: no graph in %q supports %d-edge queries", ds.Name, cfg.QueryEdges)
		}
		out = append(out, q)
	}
	return out, nil
}

// Permute returns an isomorphic copy of g with its vertices renumbered by a
// seed-determined random permutation (labels and adjacency follow the
// vertices). Repeated-traffic workloads use it to replay a query as a
// distinct byte representation of the same isomorphism class, so a
// canonical-keyed result cache must hit on structure, not on input bytes.
func Permute(g *graph.Graph, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	perm := rng.Perm(n)
	labels := make([]graph.Label, n)
	for v := 0; v < n; v++ {
		labels[perm[v]] = g.Label(int32(v))
	}
	ng := graph.NewWithCapacity(g.ID(), n)
	for _, l := range labels {
		ng.AddVertex(l)
	}
	for _, e := range g.Edges() {
		ng.MustAddEdge(int32(perm[e[0]]), int32(perm[e[1]]))
	}
	return ng
}

// walkQuery performs one random walk on src, returning the union subgraph
// with exactly edges edges, or nil if the walk's component is too small.
func walkQuery(rng *rand.Rand, src *graph.Graph, edges int) *graph.Graph {
	if src.NumVertices() == 0 || src.NumEdges() < edges {
		return nil
	}
	start := int32(rng.Intn(src.NumVertices()))
	q := graph.New(0)
	old2new := map[int32]int32{start: q.AddVertex(src.Label(start))}
	cur := start
	used := map[[2]int32]bool{}
	// The walk can stall if its component has fewer than `edges` edges;
	// bound the steps.
	maxSteps := 50 * (edges + 1) * (edges + 1)
	for steps := 0; q.NumEdges() < edges; steps++ {
		if steps > maxSteps {
			return nil
		}
		nb := src.Neighbors(cur)
		if len(nb) == 0 {
			return nil
		}
		next := nb[rng.Intn(len(nb))]
		key := [2]int32{cur, next}
		if next < cur {
			key = [2]int32{next, cur}
		}
		nv, ok := old2new[next]
		if !ok {
			nv = q.AddVertex(src.Label(next))
			old2new[next] = nv
		}
		if !used[key] {
			used[key] = true
			q.MustAddEdge(old2new[cur], nv)
		}
		cur = next
	}
	return q
}

// FalsePositiveRatio computes equation (3): the mean over queries of
// (|C| - |A|) / |C|, where C is the candidate set and A the answer set.
// Queries with empty candidate sets contribute zero.
func FalsePositiveRatio(candidates, answers []graph.IDSet) float64 {
	if len(candidates) != len(answers) {
		panic("workload: candidate/answer workload length mismatch")
	}
	if len(candidates) == 0 {
		return 0
	}
	total := 0.0
	for i := range candidates {
		c := len(candidates[i])
		if c == 0 {
			continue
		}
		total += float64(c-len(answers[i])) / float64(c)
	}
	return total / float64(len(candidates))
}
