package workload

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/subiso"
)

func testDS() *graph.Dataset {
	return gen.Synthetic(gen.SynthConfig{
		NumGraphs: 20, MeanNodes: 20, MeanDensity: 0.15, NumLabels: 3, Seed: 4,
	})
}

func TestGenerateSizesAndContainment(t *testing.T) {
	ds := testDS()
	for _, size := range []int{1, 4, 8, 16} {
		qs, err := Generate(ds, Config{NumQueries: 8, QueryEdges: size, Seed: 11})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(qs) != 8 {
			t.Fatalf("size %d: got %d queries", size, len(qs))
		}
		for i, q := range qs {
			if q.NumEdges() != size {
				t.Errorf("size %d query %d: %d edges", size, i, q.NumEdges())
			}
			if err := q.Validate(); err != nil {
				t.Errorf("size %d query %d invalid: %v", size, i, err)
			}
			if !q.IsConnected() {
				t.Errorf("size %d query %d disconnected", size, i)
			}
			// Contained in at least one dataset graph.
			found := false
			for _, g := range ds.Graphs {
				if subiso.Exists(q, g) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("size %d query %d not contained in any dataset graph", size, i)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ds := testDS()
	a, err := Generate(ds, Config{NumQueries: 5, QueryEdges: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(ds, Config{NumQueries: 5, QueryEdges: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].NumVertices() != b[i].NumVertices() {
			t.Fatalf("nondeterministic workload")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	empty := graph.NewDataset("empty")
	if _, err := Generate(empty, Config{NumQueries: 1, QueryEdges: 2}); err == nil {
		t.Errorf("empty dataset should error")
	}
	ds := testDS()
	if _, err := Generate(ds, Config{NumQueries: 1, QueryEdges: 0}); err == nil {
		t.Errorf("zero-size queries should error")
	}
	// Queries larger than any graph's edge count are impossible.
	tiny := graph.NewDataset("tiny")
	g := graph.New(0)
	g.AddVertex(1)
	g.AddVertex(2)
	g.MustAddEdge(0, 1)
	tiny.Add(g)
	if _, err := Generate(tiny, Config{NumQueries: 1, QueryEdges: 5}); err == nil {
		t.Errorf("oversized queries should error")
	}
}

func TestFalsePositiveRatio(t *testing.T) {
	cands := []graph.IDSet{{1, 2, 3, 4}, {1, 2}, {}}
	ans := []graph.IDSet{{1, 2}, {1, 2}, {}}
	// Query 1: (4-2)/4 = 0.5; query 2: 0; query 3 (empty candidates): 0.
	got := FalsePositiveRatio(cands, ans)
	want := 0.5 / 3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("FP = %v, want %v", got, want)
	}
	if FalsePositiveRatio(nil, nil) != 0 {
		t.Fatalf("empty workload FP != 0")
	}
}

func TestFalsePositiveRatioPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic on length mismatch")
		}
	}()
	FalsePositiveRatio([]graph.IDSet{{1}}, nil)
}

func TestQueriesOnDisconnectedDataset(t *testing.T) {
	cfg := gen.PCM.Scaled(8, 8)
	cfg.Seed = 13
	ds := gen.Realistic(cfg)
	qs, err := Generate(ds, Config{NumQueries: 5, QueryEdges: 8, Seed: 1})
	if err != nil {
		t.Fatalf("Generate on disconnected dataset: %v", err)
	}
	for _, q := range qs {
		if !q.IsConnected() {
			t.Errorf("random-walk query disconnected")
		}
	}
}
