// Package ctindex implements CT-Index (Klein, Kriege, Mutzel, ICDE 2011):
// for every graph, all subtrees and simple cycles up to a size limit are
// exhaustively enumerated; the canonical label of each feature is hashed into
// a fixed-size bit-array fingerprint. Filtering is a bitwise subset test of
// the query fingerprint against each graph fingerprint, and verification uses
// a tuned subgraph isomorphism matcher — the combination the paper credits
// for CT-Index's fast query processing despite its weak filtering power.
//
// CT-Index is one of the six indexed subgraph query processing methods
// compared in the reproduced paper (Katsarou, Ntarmos, Triantafillou,
// PVLDB 2015); register.go exposes it to the engine registry as "ctindex".
package ctindex

import (
	"context"
	"hash/fnv"
	"iter"

	"repro/internal/bitset"
	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/subiso"
)

// Defaults from §4.1 of the paper: 4096-bit fingerprints over trees and
// cycles of up to 4 edges (the original CT-Index paper used 6/8; the study
// adopts 4/4 after Grapes's finding that it trades a little filtering power
// for much lower times).
const (
	DefaultFingerprintBits = 4096
	DefaultMaxTreeSize     = 4
	DefaultMaxCycleSize    = 4
	// hashFunctions is the number of bits set per feature (Bloom-style).
	hashFunctions = 2
)

// Options configures a CT-Index.
type Options struct {
	FingerprintBits int
	MaxTreeSize     int // maximum tree feature size in edges
	MaxCycleSize    int // maximum cycle feature size in edges
}

func (o *Options) fill() {
	if o.FingerprintBits <= 0 {
		o.FingerprintBits = DefaultFingerprintBits
	}
	if o.MaxTreeSize <= 0 {
		o.MaxTreeSize = DefaultMaxTreeSize
	}
	if o.MaxCycleSize <= 0 {
		o.MaxCycleSize = DefaultMaxCycleSize
	}
}

// Index is a built CT-Index. Create with New, then Build.
type Index struct {
	opts  Options
	ds    *graph.Dataset
	fps   []*bitset.Bitset // fingerprint per graph
	built bool
}

// New returns an unbuilt CT-Index.
func New(opts Options) *Index {
	opts.fill()
	return &Index{opts: opts}
}

// Name implements core.Method.
func (ix *Index) Name() string { return "CT-Index" }

// Build implements core.Method.
func (ix *Index) Build(ctx context.Context, ds *graph.Dataset) error {
	ix.ds = ds
	ix.fps = make([]*bitset.Bitset, ds.Len())
	for i, g := range ds.Graphs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !ds.Alive(graph.ID(i)) {
			continue // tombstoned slots keep a nil fingerprint
		}
		ix.fps[i] = ix.fingerprint(g)
	}
	ix.built = true
	return nil
}

// fingerprint enumerates the tree and cycle features of g and hashes their
// canonical labels into a fresh fingerprint. The subtree canonization runs
// on canon's allocation-free fast path: this loop visits millions of edge
// sets on dense graphs and dominates CT-Index's build time.
func (ix *Index) fingerprint(g *graph.Graph) *bitset.Bitset {
	fp := bitset.New(ix.opts.FingerprintBits)
	es := features.NewEdgeSet(g)
	scratch := canon.NewTreeScratch(ix.opts.MaxTreeSize)
	edgeBuf := make([][2]int32, 0, ix.opts.MaxTreeSize)
	labelOf := func(v int32) graph.Label { return g.Label(v) }
	es.VisitConnectedEdgeSets(ix.opts.MaxTreeSize, func(edgeIDs []int) bool {
		edgeBuf = edgeBuf[:0]
		for _, id := range edgeIDs {
			edgeBuf = append(edgeBuf, es.Edge(id))
		}
		key, ok := scratch.TreeKeyEdges(edgeBuf, labelOf)
		if ok {
			ix.setBits(fp, string(key))
		}
		return true
	})
	var labelBuf []graph.Label
	features.VisitCycles(g, ix.opts.MaxCycleSize, func(vs []int32) bool {
		labelBuf = features.CycleLabels(g, vs, labelBuf)
		ix.setBits(fp, string(canon.CycleKey(labelBuf)))
		return true
	})
	return fp
}

// setBits hashes the canonical key into hashFunctions bit positions.
func (ix *Index) setBits(fp *bitset.Bitset, key string) {
	h := fnv.New64a()
	h.Write([]byte(key))
	v := h.Sum64()
	n := uint64(ix.opts.FingerprintBits)
	for k := 0; k < hashFunctions; k++ {
		fp.Set(int(v % n))
		// Derive the next position by mixing (splitmix-style step).
		v ^= v >> 33
		v *= 0xff51afd7ed558ccd
		v ^= v >> 33
	}
}

// Candidates implements core.Method: graphs whose fingerprint covers the
// query's.
func (ix *Index) Candidates(q *graph.Graph) (graph.IDSet, error) {
	if !ix.built {
		return nil, core.ErrNotBuilt
	}
	qfp := ix.fingerprint(q)
	var out graph.IDSet
	for i, fp := range ix.fps {
		if fp == nil {
			continue // tombstoned slot
		}
		if qfp.IsSubsetOf(fp) {
			out = append(out, graph.ID(i))
		}
	}
	return out, nil
}

// scanChunk is the number of fingerprint slots the lazy producer tests per
// emitted chunk: the subset tests stay cache-friendly while a limit-1
// stream touches a sliver of the table.
const scanChunk = 2048

var _ core.CandidateChunker = (*Index)(nil)

// CandidateChunks implements core.CandidateChunker: the query fingerprint
// is computed eagerly, then the per-graph subset tests run lazily, a window
// of fingerprint slots per chunk, so an early-terminated stream never scans
// the whole table.
func (ix *Index) CandidateChunks(q *graph.Graph) (iter.Seq[graph.IDSet], error) {
	if !ix.built {
		return nil, core.ErrNotBuilt
	}
	qfp := ix.fingerprint(q)
	fps := ix.fps
	return func(yield func(graph.IDSet) bool) {
		for lo := 0; lo < len(fps); lo += scanChunk {
			hi := min(lo+scanChunk, len(fps))
			var chunk graph.IDSet
			for i := lo; i < hi; i++ {
				if fps[i] == nil {
					continue // tombstoned slot
				}
				if qfp.IsSubsetOf(fps[i]) {
					chunk = append(chunk, graph.ID(i))
				}
			}
			if len(chunk) > 0 && !yield(chunk) {
				return
			}
		}
	}, nil
}

// VerifyCandidate implements core.Verifier using the tuned matcher.
func (ix *Index) VerifyCandidate(q *graph.Graph, id graph.ID) bool {
	g := ix.ds.Graph(id)
	if g == nil {
		return false
	}
	return subiso.ExistsTuned(q, g)
}

// SizeBytes implements core.Method: CT-Index stores one fixed-size
// fingerprint per graph.
func (ix *Index) SizeBytes() int64 {
	var sz int64
	for _, fp := range ix.fps {
		if fp != nil {
			sz += fp.SizeBytes()
		}
	}
	return sz
}
