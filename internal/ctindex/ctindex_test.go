package ctindex

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/subiso"
	"repro/internal/workload"
)

func pathGraph(labels ...graph.Label) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(int32(i-1), int32(i))
	}
	return g
}

func cycleGraph(labels ...graph.Label) *graph.Graph {
	g := pathGraph(labels...)
	g.MustAddEdge(int32(len(labels)-1), 0)
	return g
}

func build(t *testing.T, ds *graph.Dataset, opts Options) *Index {
	t.Helper()
	ix := New(opts)
	if err := ix.Build(context.Background(), ds); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix
}

func TestFingerprintSubsetProperty(t *testing.T) {
	// The fingerprint of a subgraph must be a subset of the fingerprint of
	// its supergraph — the soundness foundation of CT-Index filtering.
	ds := gen.Synthetic(gen.SynthConfig{NumGraphs: 10, MeanNodes: 12, MeanDensity: 0.25, NumLabels: 3, Seed: 8})
	ix := build(t, ds, Options{})
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 10, QueryEdges: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		qfp := ix.fingerprint(q)
		contained := false
		for _, g := range ds.Graphs {
			if subiso.Exists(q, g) {
				contained = true
				if !qfp.IsSubsetOf(ix.fps[g.ID()]) {
					t.Errorf("query %d: fingerprint not a subset for containing graph %d", i, g.ID())
				}
			}
		}
		if !contained {
			t.Fatalf("query %d not contained anywhere (workload bug)", i)
		}
	}
}

func TestCycleFeaturesDistinguish(t *testing.T) {
	// A triangle and a path have different cycle features; with tree
	// features alone they'd collide more often.
	ds := graph.NewDataset("t")
	ds.Add(cycleGraph(1, 1, 1)) // triangle
	ds.Add(pathGraph(1, 1, 1))  // path
	ix := build(t, ds, Options{})
	cands, err := ix.Candidates(cycleGraph(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if cands.Contains(1) {
		t.Errorf("path graph survived triangle query filtering")
	}
	if !cands.Contains(0) {
		t.Errorf("triangle filtered out its own query")
	}
}

func TestVerifyCandidate(t *testing.T) {
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(1, 2, 3))
	ix := build(t, ds, Options{})
	if !ix.VerifyCandidate(pathGraph(2, 3), 0) {
		t.Errorf("contained query rejected")
	}
	if ix.VerifyCandidate(pathGraph(3, 1), 0) {
		t.Errorf("non-contained query accepted")
	}
	if ix.VerifyCandidate(pathGraph(1), graph.ID(99)) {
		t.Errorf("out-of-range candidate accepted")
	}
}

func TestFixedSizeIndex(t *testing.T) {
	small := gen.Synthetic(gen.SynthConfig{NumGraphs: 10, MeanNodes: 10, MeanDensity: 0.2, NumLabels: 3, Seed: 1})
	big := gen.Synthetic(gen.SynthConfig{NumGraphs: 10, MeanNodes: 30, MeanDensity: 0.2, NumLabels: 3, Seed: 1})
	ixSmall := build(t, small, Options{})
	ixBig := build(t, big, Options{})
	// Same per-graph footprint regardless of graph size: that is the point
	// of fixed-size fingerprints.
	if ixSmall.SizeBytes() != ixBig.SizeBytes() {
		t.Errorf("fingerprint index size depends on graph size: %d vs %d",
			ixSmall.SizeBytes(), ixBig.SizeBytes())
	}
}

func TestFingerprintBitsOption(t *testing.T) {
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(1, 2))
	ix := build(t, ds, Options{FingerprintBits: 128})
	if got := ix.fps[0].Len(); got != 128 {
		t.Errorf("fingerprint length = %d, want 128", got)
	}
}

func TestUnbuilt(t *testing.T) {
	ix := New(Options{})
	if _, err := ix.Candidates(pathGraph(1)); err == nil {
		t.Errorf("want error before Build")
	}
}
