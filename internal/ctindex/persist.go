package ctindex

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// indexDTO is the serialized form of a CT-Index.
type indexDTO struct {
	FingerprintBits int
	MaxTreeSize     int
	MaxCycleSize    int
	NumGraphs       int
	Words           [][]uint64
}

// SaveIndex implements core.Persistable.
func (ix *Index) SaveIndex(w io.Writer) error {
	if !ix.built {
		return fmt.Errorf("ctindex: save before Build")
	}
	dto := indexDTO{
		FingerprintBits: ix.opts.FingerprintBits,
		MaxTreeSize:     ix.opts.MaxTreeSize,
		MaxCycleSize:    ix.opts.MaxCycleSize,
		NumGraphs:       len(ix.fps),
		Words:           make([][]uint64, len(ix.fps)),
	}
	for i, fp := range ix.fps {
		if fp == nil {
			continue // tombstoned slot: no fingerprint
		}
		dto.Words[i] = fp.Words()
	}
	return gob.NewEncoder(w).Encode(&dto)
}

// LoadIndex implements core.Persistable; ds must be the dataset the saved
// index was built over.
func (ix *Index) LoadIndex(r io.Reader, ds *graph.Dataset) error {
	var dto indexDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return fmt.Errorf("ctindex: load: %w", err)
	}
	if dto.NumGraphs != ds.Len() {
		return fmt.Errorf("ctindex: load: index covers %d graphs, dataset has %d", dto.NumGraphs, ds.Len())
	}
	ix.opts = Options{
		FingerprintBits: dto.FingerprintBits,
		MaxTreeSize:     dto.MaxTreeSize,
		MaxCycleSize:    dto.MaxCycleSize,
	}
	ix.opts.fill()
	ix.fps = make([]*bitset.Bitset, dto.NumGraphs)
	for i, words := range dto.Words {
		if words == nil {
			if ds.Alive(graph.ID(i)) {
				return fmt.Errorf("ctindex: load: live graph %d has no fingerprint", i)
			}
			continue // tombstoned slot persisted without a fingerprint
		}
		fp := bitset.FromWords(dto.FingerprintBits, words)
		if fp == nil {
			return fmt.Errorf("ctindex: load: fingerprint %d has wrong width", i)
		}
		ix.fps[i] = fp
	}
	ix.ds = ds
	ix.built = true
	return nil
}
