package ctindex

import (
	"repro/internal/core"
	"repro/internal/engine"
)

func init() {
	engine.Register(engine.Descriptor{
		Name:    "ctindex",
		Display: "CTindex",
		Aliases: []string{"CT-Index"},
		Help:    "tree+cycle canonical-label fingerprints with tuned verification",
		Notes: "Reproduces CT-Index (Klein, Kriege, Mutzel, ICDE 2011). Each graph becomes one " +
			"fixed-width bit fingerprint (hashed canonical labels of all subtrees and simple cycles up " +
			"to the size limits), so the index is the smallest of the six and filtering is a bitwise " +
			"subset test — O(fingerprintBits/64) words per graph. Filtering power is the weakest, but " +
			"the tuned verifier keeps query times low; the paper runs size-4 features and 4096-bit " +
			"fingerprints (§4.1), trading a little filtering power against the original's size-6.",
		Fields: []engine.Field{
			{Name: "fingerprintBits", Kind: engine.Int, Default: DefaultFingerprintBits, Help: "fingerprint width in bits"},
			{Name: "maxTreeSize", Kind: engine.Int, Default: DefaultMaxTreeSize, Help: "maximum tree feature size in edges"},
			{Name: "maxCycleSize", Kind: engine.Int, Default: DefaultMaxCycleSize, Help: "maximum cycle feature size in edges"},
		},
		Factory: func(p engine.Params) (core.Method, error) {
			return New(Options{
				FingerprintBits: p.Int("fingerprintBits"),
				MaxTreeSize:     p.Int("maxTreeSize"),
				MaxCycleSize:    p.Int("maxCycleSize"),
			}), nil
		},
	})
}
