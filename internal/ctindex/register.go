package ctindex

import (
	"repro/internal/core"
	"repro/internal/engine"
)

func init() {
	engine.Register(engine.Descriptor{
		Name:    "ctindex",
		Display: "CTindex",
		Aliases: []string{"CT-Index"},
		Help:    "tree+cycle canonical-label fingerprints with tuned verification",
		Fields: []engine.Field{
			{Name: "fingerprintBits", Kind: engine.Int, Default: DefaultFingerprintBits, Help: "fingerprint width in bits"},
			{Name: "maxTreeSize", Kind: engine.Int, Default: DefaultMaxTreeSize, Help: "maximum tree feature size in edges"},
			{Name: "maxCycleSize", Kind: engine.Int, Default: DefaultMaxCycleSize, Help: "maximum cycle feature size in edges"},
		},
		Factory: func(p engine.Params) (core.Method, error) {
			return New(Options{
				FingerprintBits: p.Int("fingerprintBits"),
				MaxTreeSize:     p.Int("maxTreeSize"),
				MaxCycleSize:    p.Int("maxCycleSize"),
			}), nil
		},
	})
}
