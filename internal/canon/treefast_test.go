package canon

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestTreeKeyEdgesMatchesTreeKey checks the fast path produces byte-for-byte
// the same keys as the reference implementation on random trees.
func TestTreeKeyEdgesMatchesTreeKey(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ts := NewTreeScratch(12)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		tr := randomTree(rng, n, 3)
		want, ok := TreeKey(tr)
		if !ok {
			t.Fatalf("reference rejected a tree")
		}
		edges := tr.Edges()
		got, ok := ts.TreeKeyEdges(edges, func(v int32) graph.Label { return tr.Label(v) })
		if n == 1 {
			// The edge-list form cannot express a single isolated vertex;
			// skip (CT-Index never needs it: features have >= 1 edge).
			continue
		}
		if !ok {
			t.Fatalf("trial %d: fast path rejected a tree", trial)
		}
		if got != want {
			t.Fatalf("trial %d: fast %q != reference %q", trial, got, want)
		}
	}
}

func TestTreeKeyEdgesRejectsCycles(t *testing.T) {
	ts := NewTreeScratch(4)
	// Triangle.
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 0}}
	if _, ok := ts.TreeKeyEdges(edges, func(v int32) graph.Label { return 1 }); ok {
		t.Fatalf("cycle accepted as tree")
	}
}

func TestTreeKeyEdgesScratchReuse(t *testing.T) {
	// Consecutive calls with different trees must not leak state.
	ts := NewTreeScratch(6)
	lab := func(v int32) graph.Label { return graph.Label(v % 3) }
	a1, _ := ts.TreeKeyEdges([][2]int32{{5, 9}, {9, 7}}, lab)
	_, _ = ts.TreeKeyEdges([][2]int32{{0, 1}, {1, 2}, {2, 3}}, lab)
	a2, _ := ts.TreeKeyEdges([][2]int32{{5, 9}, {9, 7}}, lab)
	if a1 != a2 {
		t.Fatalf("scratch reuse changed key: %q vs %q", a1, a2)
	}
}

func TestTreeKeyEdgesCapacityGuard(t *testing.T) {
	ts := NewTreeScratch(2)                     // up to 3 vertices
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}} // 4 vertices
	if _, ok := ts.TreeKeyEdges(edges, func(v int32) graph.Label { return 0 }); ok {
		t.Fatalf("over-capacity edge set accepted")
	}
}
