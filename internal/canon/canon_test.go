package canon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func path(labels ...graph.Label) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(int32(i-1), int32(i))
	}
	return g
}

func TestPathKeyReversalInvariance(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		seq := make([]graph.Label, len(raw))
		rev := make([]graph.Label, len(raw))
		for i, b := range raw {
			seq[i] = graph.Label(b % 5)
			rev[len(raw)-1-i] = graph.Label(b % 5)
		}
		return PathKey(seq) == PathKey(rev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPathKeyDistinguishes(t *testing.T) {
	a := PathKey([]graph.Label{1, 2, 3})
	b := PathKey([]graph.Label{1, 3, 2})
	if a == b {
		t.Fatalf("distinct paths share key")
	}
	if PathKey(nil) != "" {
		t.Fatalf("empty path key not empty")
	}
	// Length matters: [1] vs [1,1].
	if PathKey([]graph.Label{1}) == PathKey([]graph.Label{1, 1}) {
		t.Fatalf("paths of different length share key")
	}
}

func TestCycleKeyRotationReflectionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(6)
		seq := make([]graph.Label, n)
		for i := range seq {
			seq[i] = graph.Label(rng.Intn(4))
		}
		want := CycleKey(seq)
		// Any rotation.
		r := rng.Intn(n)
		rot := append(append([]graph.Label{}, seq[r:]...), seq[:r]...)
		if CycleKey(rot) != want {
			t.Fatalf("rotation changed key: %v vs %v", seq, rot)
		}
		// Reflection.
		ref := make([]graph.Label, n)
		for i := range seq {
			ref[i] = seq[n-1-i]
		}
		if CycleKey(ref) != want {
			t.Fatalf("reflection changed key: %v vs %v", seq, ref)
		}
	}
}

func TestCycleVsPathKeysDisjoint(t *testing.T) {
	seq := []graph.Label{1, 2, 3}
	if Key(CycleKey(seq)) == PathKey(seq) {
		t.Fatalf("cycle and path of same labels share key")
	}
}

// permuteGraph returns g with vertices renamed by a random permutation.
func permuteGraph(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	n := g.NumVertices()
	perm := rng.Perm(n)
	out := graph.New(0)
	inv := make([]int32, n)
	for newV, oldV := range perm {
		inv[oldV] = int32(newV)
	}
	// add in new order
	labels := make([]graph.Label, n)
	for oldV := 0; oldV < n; oldV++ {
		labels[inv[oldV]] = g.Label(int32(oldV))
	}
	for _, l := range labels {
		out.AddVertex(l)
	}
	for _, e := range g.Edges() {
		out.MustAddEdge(inv[e[0]], inv[e[1]])
	}
	return out
}

func randomTree(rng *rand.Rand, n, nlab int) *graph.Graph {
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(nlab)))
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(int32(rng.Intn(i)), int32(i))
	}
	return g
}

func TestTreeKeyPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(12)
		tr := randomTree(rng, n, 3)
		k1, ok := TreeKey(tr)
		if !ok {
			t.Fatalf("TreeKey rejected a tree")
		}
		p := permuteGraph(tr, rng)
		k2, ok := TreeKey(p)
		if !ok || k1 != k2 {
			t.Fatalf("trial %d: permutation changed tree key", trial)
		}
	}
}

func TestTreeKeyDistinguishesShapes(t *testing.T) {
	// Star S3 vs path P4, same label multiset.
	star := graph.New(0)
	c := star.AddVertex(1)
	for i := 0; i < 3; i++ {
		v := star.AddVertex(1)
		star.MustAddEdge(c, v)
	}
	p := path(1, 1, 1, 1)
	k1, _ := TreeKey(star)
	k2, _ := TreeKey(p)
	if k1 == k2 {
		t.Fatalf("star and path share tree key")
	}
}

func TestTreeKeyRejectsNonTrees(t *testing.T) {
	tri := path(1, 2, 3)
	tri.MustAddEdge(2, 0)
	if _, ok := TreeKey(tri); ok {
		t.Fatalf("cycle accepted as tree")
	}
	dis := graph.New(0)
	dis.AddVertex(1)
	dis.AddVertex(2)
	if _, ok := TreeKey(dis); ok {
		t.Fatalf("forest accepted as tree")
	}
	if _, ok := TreeKey(graph.New(0)); ok {
		t.Fatalf("empty graph accepted as tree")
	}
}

func TestGraphKeyPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(7)
		g := randomTree(rng, n, 2)
		for k := 0; k < rng.Intn(4); k++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		k1, ok := GraphKey(g)
		if !ok {
			t.Fatalf("GraphKey failed on connected graph")
		}
		p := permuteGraph(g, rng)
		k2, ok := GraphKey(p)
		if !ok || k1 != k2 {
			t.Fatalf("trial %d: permutation changed graph key", trial)
		}
	}
}

func TestGraphKeyDistinguishes(t *testing.T) {
	// Triangle vs path with same labels.
	tri := path(1, 1, 1)
	tri.MustAddEdge(2, 0)
	p3 := path(1, 1, 1)
	k1, _ := GraphKey(tri)
	k2, _ := GraphKey(p3)
	if k1 == k2 {
		t.Fatalf("triangle and P3 share graph key")
	}
	// Different labels on the same shape.
	a := path(1, 2)
	b := path(1, 3)
	ka, _ := GraphKey(a)
	kb, _ := GraphKey(b)
	if ka == kb {
		t.Fatalf("different labels share graph key")
	}
}

func TestGraphKeySingleVertexAndErrors(t *testing.T) {
	v := graph.New(0)
	v.AddVertex(7)
	if _, ok := GraphKey(v); !ok {
		t.Fatalf("single vertex rejected")
	}
	if _, ok := GraphKey(graph.New(0)); ok {
		t.Fatalf("empty graph accepted")
	}
	dis := graph.New(0)
	dis.AddVertex(1)
	dis.AddVertex(1)
	if _, ok := GraphKey(dis); ok {
		t.Fatalf("disconnected graph accepted")
	}
}

func TestFeatureKeyConsistentWithSpecializedKeys(t *testing.T) {
	// A path feature keyed via FeatureKey must equal PathKey of its labels.
	p := path(2, 1, 3)
	got, ok := FeatureKey(p)
	if !ok || got != PathKey([]graph.Label{2, 1, 3}) {
		t.Fatalf("FeatureKey(path) != PathKey")
	}
	// A cycle feature keyed via FeatureKey must equal CycleKey.
	c := path(1, 2, 3, 4)
	c.MustAddEdge(3, 0)
	gotC, ok := FeatureKey(c)
	if !ok || gotC != CycleKey([]graph.Label{1, 2, 3, 4}) {
		t.Fatalf("FeatureKey(cycle) != CycleKey")
	}
}

func TestFeatureKeyIsomorphismInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(6)
		g := randomTree(rng, n, 2)
		for k := 0; k < rng.Intn(3); k++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		k1, ok1 := FeatureKey(g)
		k2, ok2 := FeatureKey(permuteGraph(g, rng))
		if !ok1 || !ok2 || k1 != k2 {
			t.Fatalf("trial %d: FeatureKey not invariant", trial)
		}
	}
}
