// Package canon computes canonical labels for the feature structures used by
// the indexing methods: label paths, simple cycles, unrooted trees, and
// general connected graphs. Two features receive the same Key iff they are
// isomorphic (as labelled structures), so Keys serve as index keys.
package canon

import (
	"encoding/binary"
	"sort"

	"repro/internal/dfscode"
	"repro/internal/graph"
)

// Key is a canonical label: an opaque byte string, comparable and hashable.
type Key string

// appendLabel appends the 4-byte little-endian encoding of l to buf.
func appendLabel(buf []byte, l graph.Label) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(l))
	return append(buf, tmp[:]...)
}

// EncodeLabels returns the raw (non-canonical) key of a label sequence.
func EncodeLabels(seq []graph.Label) Key {
	buf := make([]byte, 0, 4*len(seq))
	for _, l := range seq {
		buf = appendLabel(buf, l)
	}
	return Key(buf)
}

// PathKey returns the canonical label of a label path: the lexicographically
// smaller of the sequence and its reverse, so a path and its reversal index
// identically.
func PathKey(seq []graph.Label) Key {
	if len(seq) == 0 {
		return ""
	}
	forward := true
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		if seq[i] != seq[j] {
			forward = seq[i] < seq[j]
			break
		}
	}
	buf := make([]byte, 0, 4*len(seq))
	if forward {
		for _, l := range seq {
			buf = appendLabel(buf, l)
		}
	} else {
		for i := len(seq) - 1; i >= 0; i-- {
			buf = appendLabel(buf, seq[i])
		}
	}
	return Key(buf)
}

// CycleKey returns the canonical label of a simple cycle given the label
// sequence around the cycle (first vertex not repeated at the end): the
// lexicographically smallest rotation over both orientations.
func CycleKey(seq []graph.Label) Key {
	n := len(seq)
	if n == 0 {
		return ""
	}
	best := make([]graph.Label, n)
	cur := make([]graph.Label, n)
	haveBest := false
	for dir := 0; dir < 2; dir++ {
		for start := 0; start < n; start++ {
			for k := 0; k < n; k++ {
				var idx int
				if dir == 0 {
					idx = (start + k) % n
				} else {
					idx = ((start-k)%n + n) % n
				}
				cur[k] = seq[idx]
			}
			if !haveBest || lessLabels(cur, best) {
				copy(best, cur)
				haveBest = true
			}
		}
	}
	buf := make([]byte, 0, 4*n)
	// Prefix distinguishes an n-cycle from an n-label path.
	buf = append(buf, 'C')
	for _, l := range best {
		buf = appendLabel(buf, l)
	}
	return Key(buf)
}

func lessLabels(a, b []graph.Label) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// TreeKey returns the canonical label of an unrooted labelled tree using the
// AHU encoding rooted at the tree center(s). ok is false if g is not a tree
// (disconnected or has a cycle).
func TreeKey(g *graph.Graph) (key Key, ok bool) {
	n := g.NumVertices()
	if n == 0 {
		return "", false
	}
	if g.NumEdges() != n-1 || !g.IsConnected() {
		return "", false
	}
	centers := treeCenters(g)
	var best string
	for i, c := range centers {
		enc := ahuEncode(g, c, -1)
		if i == 0 || enc < best {
			best = enc
		}
	}
	return Key("T" + best), true
}

// treeCenters returns the 1 or 2 centers of a tree (peel leaves layer by
// layer until at most two vertices remain).
func treeCenters(g *graph.Graph) []int32 {
	n := g.NumVertices()
	if n == 1 {
		return []int32{0}
	}
	deg := make([]int, n)
	remaining := n
	var leaves []int32
	for v := int32(0); int(v) < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] <= 1 {
			leaves = append(leaves, v)
		}
	}
	removed := make([]bool, n)
	for remaining > 2 {
		var next []int32
		for _, v := range leaves {
			removed[v] = true
			remaining--
			for _, w := range g.Neighbors(v) {
				if removed[w] {
					continue
				}
				deg[w]--
				if deg[w] == 1 {
					next = append(next, w)
				}
			}
		}
		leaves = next
	}
	var centers []int32
	for v := int32(0); int(v) < n; v++ {
		if !removed[v] {
			centers = append(centers, v)
		}
	}
	return centers
}

// ahuEncode returns the AHU string of the subtree rooted at v (parent p),
// incorporating vertex labels.
func ahuEncode(g *graph.Graph, v, p int32) string {
	var children []string
	for _, w := range g.Neighbors(v) {
		if w != p {
			children = append(children, ahuEncode(g, w, v))
		}
	}
	sort.Strings(children)
	buf := make([]byte, 0, 8+16*len(children))
	buf = append(buf, '(')
	buf = appendLabel(buf, g.Label(v))
	for _, c := range children {
		buf = append(buf, c...)
	}
	buf = append(buf, ')')
	return string(buf)
}

// GraphKey returns the canonical label of a connected graph with at least one
// edge, based on its minimum DFS code. Single-vertex graphs are encoded from
// their label alone. ok is false for empty or disconnected graphs.
func GraphKey(g *graph.Graph) (key Key, ok bool) {
	switch {
	case g.NumVertices() == 0:
		return "", false
	case g.NumVertices() == 1:
		return Key("V" + string(EncodeLabels([]graph.Label{g.Label(0)}))), true
	case !g.IsConnected():
		return "", false
	}
	return Key("G" + dfscode.Minimum(g).Key()), true
}

// FeatureKey returns the canonical key of any connected feature graph,
// dispatching to the cheapest applicable canonical form: paths and cycles
// get specialized keys (identical to what enumeration-time keying produces),
// other trees use TreeKey, and everything else falls back to GraphKey.
func FeatureKey(g *graph.Graph) (Key, bool) {
	n := g.NumVertices()
	switch {
	case n == 0:
		return "", false
	case n == 1:
		return Key("V" + string(EncodeLabels([]graph.Label{g.Label(0)}))), true
	case !g.IsConnected():
		return "", false
	}
	if seq, ok := asPath(g); ok {
		return PathKey(seq), true
	}
	if seq, ok := asCycle(g); ok {
		return CycleKey(seq), true
	}
	if k, ok := TreeKey(g); ok {
		return k, true
	}
	return GraphKey(g)
}

// asPath extracts the label sequence if g is a simple path.
func asPath(g *graph.Graph) ([]graph.Label, bool) {
	n := g.NumVertices()
	if g.NumEdges() != n-1 {
		return nil, false
	}
	var ends []int32
	for v := int32(0); int(v) < n; v++ {
		switch g.Degree(v) {
		case 1:
			ends = append(ends, v)
		case 2:
		default:
			return nil, false
		}
	}
	if n == 1 {
		return []graph.Label{g.Label(0)}, true
	}
	if len(ends) != 2 {
		return nil, false
	}
	seq := make([]graph.Label, 0, n)
	prev, cur := int32(-1), ends[0]
	for {
		seq = append(seq, g.Label(cur))
		if cur == ends[1] && len(seq) == n {
			break
		}
		next := int32(-1)
		for _, w := range g.Neighbors(cur) {
			if w != prev {
				next = w
				break
			}
		}
		if next < 0 {
			return nil, false
		}
		prev, cur = cur, next
	}
	return seq, true
}

// asCycle extracts the label sequence around g if it is a simple cycle.
func asCycle(g *graph.Graph) ([]graph.Label, bool) {
	n := g.NumVertices()
	if n < 3 || g.NumEdges() != n {
		return nil, false
	}
	for v := int32(0); int(v) < n; v++ {
		if g.Degree(v) != 2 {
			return nil, false
		}
	}
	seq := make([]graph.Label, 0, n)
	prev, cur := int32(-1), int32(0)
	for len(seq) < n {
		seq = append(seq, g.Label(cur))
		next := int32(-1)
		for _, w := range g.Neighbors(cur) {
			if w != prev {
				next = w
				break
			}
		}
		prev, cur = cur, next
	}
	if cur != 0 {
		return nil, false // not a single cycle (cannot happen if checks hold)
	}
	return seq, true
}
