package canon

import (
	"testing"

	"repro/internal/graph"
)

// FuzzPathKey checks reversal invariance and length discrimination on
// arbitrary label sequences.
func FuzzPathKey(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{})
	f.Add([]byte{7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, raw []byte) {
		seq := make([]graph.Label, len(raw))
		rev := make([]graph.Label, len(raw))
		for i, b := range raw {
			seq[i] = graph.Label(b)
			rev[len(raw)-1-i] = graph.Label(b)
		}
		if PathKey(seq) != PathKey(rev) {
			t.Fatalf("reversal changed key: %v", seq)
		}
		if len(seq) > 0 && PathKey(seq) == PathKey(seq[:len(seq)-1]) {
			t.Fatalf("prefix shares key: %v", seq)
		}
	})
}

// FuzzCycleKey checks rotation and reflection invariance.
func FuzzCycleKey(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(1))
	f.Add([]byte{5, 5, 5, 5}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, rot uint8) {
		if len(raw) == 0 || len(raw) > 32 {
			return
		}
		n := len(raw)
		seq := make([]graph.Label, n)
		for i, b := range raw {
			seq[i] = graph.Label(b % 7)
		}
		want := CycleKey(seq)
		r := int(rot) % n
		rotated := append(append([]graph.Label{}, seq[r:]...), seq[:r]...)
		if CycleKey(rotated) != want {
			t.Fatalf("rotation changed key: %v rot %d", seq, r)
		}
		ref := make([]graph.Label, n)
		for i := range seq {
			ref[i] = seq[n-1-i]
		}
		if CycleKey(ref) != want {
			t.Fatalf("reflection changed key: %v", seq)
		}
	})
}

// FuzzTreeKeyEdgesAgainstReference cross-checks the fast canonizer against
// the reference on fuzz-built trees.
func FuzzTreeKeyEdgesAgainstReference(f *testing.F) {
	f.Add([]byte{0, 1, 2}, []byte{1, 2, 0, 1})
	f.Fuzz(func(t *testing.T, parents []byte, labels []byte) {
		n := len(parents) + 1
		if n < 2 || n > 11 || len(labels) == 0 {
			return
		}
		g := graph.New(0)
		for i := 0; i < n; i++ {
			g.AddVertex(graph.Label(labels[i%len(labels)] % 5))
		}
		for i := 1; i < n; i++ {
			g.MustAddEdge(int32(int(parents[i-1])%i), int32(i))
		}
		want, ok := TreeKey(g)
		if !ok {
			t.Fatalf("reference rejected tree")
		}
		ts := NewTreeScratch(n)
		got, ok := ts.TreeKeyEdges(g.Edges(), func(v int32) graph.Label { return g.Label(v) })
		if !ok || got != want {
			t.Fatalf("fast canonizer diverged: %q vs %q", got, want)
		}
	})
}
