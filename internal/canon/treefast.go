package canon

import (
	"sort"

	"repro/internal/graph"
)

// TreeScratch holds reusable buffers for TreeKeyEdges, the allocation-free
// variant of TreeKey used on CT-Index's hot path (millions of small subtree
// canonizations per dataset).
type TreeScratch struct {
	verts   []int32 // local -> original vertex
	local   map[int32]int32
	adj     [][]int32 // local adjacency
	deg     []int
	removed []bool
	leaves  []int32
	next    []int32
	labels  []graph.Label
	enc     []string
}

// NewTreeScratch returns scratch space for trees of up to maxEdges edges.
func NewTreeScratch(maxEdges int) *TreeScratch {
	n := maxEdges + 1
	ts := &TreeScratch{
		verts:   make([]int32, 0, n),
		local:   make(map[int32]int32, n),
		adj:     make([][]int32, n),
		deg:     make([]int, n),
		removed: make([]bool, n),
		leaves:  make([]int32, 0, n),
		next:    make([]int32, 0, n),
		labels:  make([]graph.Label, n),
		enc:     make([]string, 0, n),
	}
	for i := range ts.adj {
		ts.adj[i] = make([]int32, 0, 4)
	}
	return ts
}

// TreeKeyEdges computes the canonical tree label of the structure given by
// the edge list, with vertex labels supplied by labelOf. It returns ok =
// false when the edge set is not a tree (has a repeated vertex count
// mismatch). The result is identical to TreeKey on the materialized graph.
func (ts *TreeScratch) TreeKeyEdges(edges [][2]int32, labelOf func(int32) graph.Label) (Key, bool) {
	// Reset and localize.
	ts.verts = ts.verts[:0]
	clear(ts.local)
	mapV := func(v int32) int32 {
		if lv, ok := ts.local[v]; ok {
			return lv
		}
		lv := int32(len(ts.verts))
		if int(lv) >= len(ts.adj) {
			return -1
		}
		ts.local[v] = lv
		ts.verts = append(ts.verts, v)
		ts.adj[lv] = ts.adj[lv][:0]
		ts.labels[lv] = labelOf(v)
		return lv
	}
	for _, e := range edges {
		u, v := mapV(e[0]), mapV(e[1])
		if u < 0 || v < 0 {
			return "", false // exceeds scratch capacity
		}
		ts.adj[u] = append(ts.adj[u], v)
		ts.adj[v] = append(ts.adj[v], u)
	}
	n := len(ts.verts)
	if n != len(edges)+1 {
		return "", false // not a tree (enumerators pass connected sets)
	}
	if n == 1 {
		return Key("T(" + string(EncodeLabels([]graph.Label{ts.labels[0]})) + ")"), true
	}

	// Centers by leaf peeling.
	remaining := n
	ts.leaves = ts.leaves[:0]
	for v := 0; v < n; v++ {
		ts.deg[v] = len(ts.adj[v])
		ts.removed[v] = false
		if ts.deg[v] <= 1 {
			ts.leaves = append(ts.leaves, int32(v))
		}
	}
	leaves := ts.leaves
	for remaining > 2 {
		ts.next = ts.next[:0]
		for _, v := range leaves {
			ts.removed[v] = true
			remaining--
			for _, w := range ts.adj[v] {
				if ts.removed[w] {
					continue
				}
				ts.deg[w]--
				if ts.deg[w] == 1 {
					ts.next = append(ts.next, w)
				}
			}
		}
		leaves, ts.next = ts.next, leaves
	}

	best := ""
	first := true
	for v := 0; v < n; v++ {
		if ts.removed[v] {
			continue
		}
		enc := ts.ahu(int32(v), -1)
		if first || enc < best {
			best, first = enc, false
		}
	}
	return Key("T" + best), true
}

// ahu is the AHU encoding on the localized tree; it mirrors ahuEncode in
// canon.go so fast and slow paths produce identical keys.
func (ts *TreeScratch) ahu(v, p int32) string {
	var children []string
	for _, w := range ts.adj[v] {
		if w != p {
			children = append(children, ts.ahu(w, v))
		}
	}
	sort.Strings(children)
	buf := make([]byte, 0, 8+16*len(children))
	buf = append(buf, '(')
	buf = appendLabel(buf, ts.labels[v])
	for _, c := range children {
		buf = append(buf, c...)
	}
	buf = append(buf, ')')
	return string(buf)
}
