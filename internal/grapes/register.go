package grapes

import (
	"repro/internal/core"
	"repro/internal/engine"
)

func init() {
	engine.Register(engine.Descriptor{
		Name:    "grapes",
		Display: "Grapes",
		Help:    "exhaustive label-path trie with location info, parallel build and component-wise verification",
		Fields: []engine.Field{
			{Name: "maxPathLen", Kind: engine.Int, Default: DefaultMaxPathLen, Help: "maximum path feature size in edges"},
			{Name: "workers", Kind: engine.Int, Default: DefaultWorkers, Help: "build/verify parallelism"},
		},
		Factory: func(p engine.Params) (core.Method, error) {
			return New(Options{
				MaxPathLen: p.Int("maxPathLen"),
				Workers:    p.Int("workers"),
			}), nil
		},
	})
}
