package grapes

import (
	"repro/internal/core"
	"repro/internal/engine"
)

func init() {
	engine.Register(engine.Descriptor{
		Name:    "grapes",
		Display: "Grapes",
		Help:    "exhaustive label-path trie with location info, parallel build and component-wise verification",
		Notes: "Reproduces GRAPES (Giugno et al., PLoS One 2013), the fastest builder in the " +
			"paper's comparison thanks to its multi-threaded construction. Indexing enumerates every " +
			"label path of up to `maxPathLen` edges from every vertex, so build cost and index size " +
			"grow roughly with the sum of per-vertex degree^maxPathLen; the paper's §4.1 defaults are " +
			"`maxPathLen=4` and 6 worker threads. Location info makes verification run against " +
			"individual connected components instead of whole graphs.",
		Fields: []engine.Field{
			{Name: "maxPathLen", Kind: engine.Int, Default: DefaultMaxPathLen, Help: "maximum path feature size in edges"},
			{Name: "workers", Kind: engine.Int, Default: DefaultWorkers, Help: "build/verify parallelism"},
			{Name: "storage", Kind: engine.String, Default: core.StorageHeap, Runtime: true,
				Help: "how a restored index is held: heap (eager decode) or mmap (lazy, paged)"},
		},
		Factory: func(p engine.Params) (core.Method, error) {
			return New(Options{
				MaxPathLen: p.Int("maxPathLen"),
				Workers:    p.Int("workers"),
				Storage:    p.String("storage"),
			}), nil
		},
		Check: engine.CheckStorageField,
	})
}
