package grapes

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/canon"
	"repro/internal/graph"
)

// postingDTO is one feature's serialized posting list.
type postingDTO struct {
	Key    string
	IDs    []int32
	Counts []int32
	Starts [][]int32
}

// indexDTO is the serialized form of a Grapes index.
type indexDTO struct {
	MaxPathLen int
	Workers    int
	NumGraphs  int
	Postings   []postingDTO
	Comps      [][]int32
	CompCount  []int
}

// SaveIndex implements core.Persistable.
func (ix *Index) SaveIndex(w io.Writer) error {
	if !ix.built {
		return fmt.Errorf("grapes: save before Build")
	}
	if err := ix.materializeAll(); err != nil {
		return err
	}
	dto := indexDTO{
		MaxPathLen: ix.opts.MaxPathLen,
		Workers:    ix.opts.Workers,
		NumGraphs:  len(ix.comps),
		Comps:      ix.comps,
		CompCount:  ix.compCount,
	}
	for key, p := range ix.features {
		pd := postingDTO{Key: string(key)}
		for i, id := range p.ids {
			pd.IDs = append(pd.IDs, int32(id))
			pd.Counts = append(pd.Counts, p.locs[i].count)
			pd.Starts = append(pd.Starts, p.locs[i].starts)
		}
		dto.Postings = append(dto.Postings, pd)
	}
	return gob.NewEncoder(w).Encode(&dto)
}

// LoadIndex implements core.Persistable; ds must be the dataset the saved
// index was built over (the location info stores its vertex ids).
func (ix *Index) LoadIndex(r io.Reader, ds *graph.Dataset) error {
	var dto indexDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return fmt.Errorf("grapes: load: %w", err)
	}
	if dto.NumGraphs != ds.Len() {
		return fmt.Errorf("grapes: load: index covers %d graphs, dataset has %d", dto.NumGraphs, ds.Len())
	}
	if len(dto.Comps) != dto.NumGraphs || len(dto.CompCount) != dto.NumGraphs {
		return fmt.Errorf("grapes: load: corrupt component tables")
	}
	for i, comp := range dto.Comps {
		if !ds.Alive(graph.ID(i)) {
			continue // tombstoned slots carry no component table
		}
		if len(comp) != ds.Graphs[i].NumVertices() {
			return fmt.Errorf("grapes: load: graph %d has %d vertices, index recorded %d",
				i, ds.Graphs[i].NumVertices(), len(comp))
		}
	}
	ix.opts = Options{MaxPathLen: dto.MaxPathLen, Workers: dto.Workers, Storage: ix.opts.Storage}
	ix.opts.fill()
	ix.lazy = nil
	ix.features = make(map[canon.Key]*posting, len(dto.Postings))
	for _, pd := range dto.Postings {
		if len(pd.IDs) != len(pd.Counts) || len(pd.IDs) != len(pd.Starts) {
			return fmt.Errorf("grapes: load: corrupt posting for key %q", pd.Key)
		}
		p := &posting{}
		for i, id := range pd.IDs {
			p.ids = append(p.ids, graph.ID(id))
			p.locs = append(p.locs, location{count: pd.Counts[i], starts: pd.Starts[i]})
		}
		ix.features[canon.Key(pd.Key)] = p
	}
	ix.comps = dto.Comps
	ix.compCount = dto.CompCount
	ix.ds = ds
	ix.built = true
	return nil
}
