package grapes

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/workload"
)

func pathGraph(labels ...graph.Label) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(int32(i-1), int32(i))
	}
	return g
}

func build(t *testing.T, ds *graph.Dataset, opts Options) *Index {
	t.Helper()
	ix := New(opts)
	if err := ix.Build(context.Background(), ds); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix
}

func TestCandidatesBasic(t *testing.T) {
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(1, 2, 3))
	ds.Add(pathGraph(1, 2, 4))
	ds.Add(pathGraph(5, 6))
	ix := build(t, ds, Options{})

	cands, err := ix.Candidates(pathGraph(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !cands.Equal(graph.IDSet{0, 1}) {
		t.Errorf("candidates = %v, want [0 1]", cands)
	}
	cands, _ = ix.Candidates(pathGraph(2, 3))
	if !cands.Equal(graph.IDSet{0}) {
		t.Errorf("candidates = %v, want [0]", cands)
	}
	cands, _ = ix.Candidates(pathGraph(9, 9))
	if len(cands) != 0 {
		t.Errorf("candidates for absent labels = %v", cands)
	}
}

func TestCountDominance(t *testing.T) {
	// Data graph 0 has one 1-1 edge, graph 1 has two (a path 1-1-1).
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(1, 1))
	ds.Add(pathGraph(1, 1, 1))
	ix := build(t, ds, Options{})
	// Query needs two 1-1 edges.
	q := pathGraph(1, 1, 1)
	cands, err := ix.Candidates(q)
	if err != nil {
		t.Fatal(err)
	}
	if !cands.Equal(graph.IDSet{1}) {
		t.Errorf("count dominance failed: candidates = %v, want [1]", cands)
	}
}

func TestComponentFiltering(t *testing.T) {
	// Graph 0: two components, labels {1,2} and {3,4}. A query path
	// 1-2-...-no wait: a connected query whose features are split across
	// components cannot be contained; the location info must reject it.
	g := graph.New(0)
	a := g.AddVertex(1)
	b := g.AddVertex(2)
	g.MustAddEdge(a, b)
	c := g.AddVertex(1)
	d := g.AddVertex(3)
	g.MustAddEdge(c, d)
	ds := graph.NewDataset("t")
	ds.Add(g)
	ix := build(t, ds, Options{})

	// Query 2-1-3 requires features 2-1 and 1-3 in the SAME component.
	q := pathGraph(2, 1, 3)
	cands, err := ix.Candidates(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("component filtering failed: candidates = %v, want none", cands)
	}
}

func TestPlanVerifyOnComponents(t *testing.T) {
	// Two components; the query matches only the second. Verify must find it.
	g := graph.New(0)
	g.AddVertex(9)
	x := g.AddVertex(1)
	y := g.AddVertex(2)
	z := g.AddVertex(3)
	g.MustAddEdge(x, y)
	g.MustAddEdge(y, z)
	ds := graph.NewDataset("t")
	ds.Add(g)
	ix := build(t, ds, Options{})

	plan, err := ix.PlanQuery(pathGraph(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Candidates().Equal(graph.IDSet{0}) {
		t.Fatalf("candidates = %v", plan.Candidates())
	}
	if !plan.Verify(0) {
		t.Errorf("verification failed on the containing component")
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	ds := gen.Synthetic(gen.SynthConfig{NumGraphs: 12, MeanNodes: 15, MeanDensity: 0.2, NumLabels: 3, Seed: 2})
	seq := build(t, ds, Options{Workers: 1})
	par := build(t, ds, Options{Workers: 8})
	if seq.NumFeatures() != par.NumFeatures() {
		t.Fatalf("feature count differs by worker count: %d vs %d", seq.NumFeatures(), par.NumFeatures())
	}
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 5, QueryEdges: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		a, err1 := seq.Candidates(q)
		b, err2 := par.Candidates(q)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !a.Equal(b) {
			t.Errorf("query %d: sequential %v vs parallel %v", i, a, b)
		}
	}
}

func TestSizeAndFeatures(t *testing.T) {
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(1, 2, 3))
	ix := build(t, ds, Options{})
	if ix.SizeBytes() <= 0 {
		t.Errorf("SizeBytes = %d", ix.SizeBytes())
	}
	// P3 label paths (canonical): [1],[2],[3],[1 2],[2 3],[1 2 3] = 6.
	if ix.NumFeatures() != 6 {
		t.Errorf("NumFeatures = %d, want 6", ix.NumFeatures())
	}
}

func TestUnbuiltErrors(t *testing.T) {
	ix := New(Options{})
	if _, err := ix.Candidates(pathGraph(1)); err == nil {
		t.Errorf("want error before Build")
	}
}

func TestEmptyDataset(t *testing.T) {
	ds := graph.NewDataset("empty")
	ix := build(t, ds, Options{})
	cands, err := ix.Candidates(pathGraph(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("empty dataset produced candidates")
	}
}
