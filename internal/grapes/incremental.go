package grapes

import (
	"sort"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/graph"
)

var _ core.IncrementalIndexer = (*Index)(nil)

// AddGraphToIndex implements core.IncrementalIndexer: the graph's path
// features are enumerated exactly as during Build and merged into the
// existing postings. Dataset IDs are append-only, so a freshly added
// graph's id sorts at (or past) the tail of every posting it joins and
// the sorted-postings invariant is kept by a binary-search insert that is
// an append in practice.
func (ix *Index) AddGraphToIndex(g *graph.Graph) error {
	if !ix.built {
		return core.ErrNotBuilt
	}
	// A lazily-opened index materializes fully before its first mutation:
	// the splice below mutates heap postings, which mapped sections cannot
	// back. The engine re-persists after mutations, writing plain v2.
	if err := ix.materializeAll(); err != nil {
		return err
	}
	id := g.ID()
	for int(id) >= len(ix.comps) {
		ix.comps = append(ix.comps, nil)
		ix.compCount = append(ix.compCount, 0)
	}
	shard := &buildShard{features: make(map[canon.Key]map[graph.ID]*location)}
	ix.indexGraph(shard, g)
	for key, byGraph := range shard.features {
		p := ix.features[key]
		if p == nil {
			p = &posting{}
			ix.features[key] = p
		}
		for gid, loc := range byGraph {
			insertPosting(p, gid, *loc)
		}
	}
	return nil
}

// RemoveGraphFromIndex implements core.IncrementalIndexer: graph id's
// entries are cut from every posting (features left with no graphs are
// dropped) and its component table released. A full posting sweep is
// O(index), far below a rebuild's feature re-enumeration over every graph.
func (ix *Index) RemoveGraphFromIndex(id graph.ID) error {
	if !ix.built {
		return core.ErrNotBuilt
	}
	if err := ix.materializeAll(); err != nil {
		return err
	}
	for key, p := range ix.features {
		i := sort.Search(len(p.ids), func(i int) bool { return p.ids[i] >= id })
		if i >= len(p.ids) || p.ids[i] != id {
			continue
		}
		p.ids = append(p.ids[:i], p.ids[i+1:]...)
		p.locs = append(p.locs[:i], p.locs[i+1:]...)
		if len(p.ids) == 0 {
			delete(ix.features, key)
		}
	}
	if int(id) < len(ix.comps) {
		ix.comps[id] = nil
		ix.compCount[id] = 0
	}
	return nil
}

// insertPosting splices (id, loc) into p keeping ids sorted; refreshing an
// existing entry overwrites it.
func insertPosting(p *posting, id graph.ID, loc location) {
	i := sort.Search(len(p.ids), func(i int) bool { return p.ids[i] >= id })
	if i < len(p.ids) && p.ids[i] == id {
		p.locs[i] = loc
		return
	}
	p.ids = append(p.ids, 0)
	copy(p.ids[i+1:], p.ids[i:])
	p.ids[i] = id
	p.locs = append(p.locs, location{})
	copy(p.locs[i+1:], p.locs[i:])
	p.locs[i] = loc
}
