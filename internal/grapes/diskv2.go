package grapes

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/diskfmt"
	"repro/internal/graph"
	"repro/internal/obs"
)

// repro-index v2 layout for Grapes. The feature directory is sorted by
// key bytes so a single feature resolves by binary search against the
// mapped directory, postings are roaring-compressed id sets followed by
// their location payloads, and component tables get a fixed-stride
// directory so compCount is readable without materializing the table.
//
//	secMeta     maxPathLen, workers, numGraphs, numFeatures (4×u32)
//	secKeyDir   numFeatures × {keyOff, keyLen, card, postOff, postLen} (5×u32)
//	secKeyBlob  concatenated key bytes
//	secPostings per feature: pLen u32, roaring ids, then per id
//	            ascending: count u32, nStarts u32, starts nStarts×u32
//	secCompDir  numGraphs × {blobOff, nVerts, compCount} (3×u32)
//	secCompBlob concatenated vertex→component arrays (u32 each)
const (
	secMeta     = 1
	secKeyDir   = 2
	secKeyBlob  = 3
	secPostings = 4
	secCompDir  = 5
	secCompBlob = 6

	keyDirEntrySize  = 20
	compDirEntrySize = 12
)

var (
	_ core.SectionPersistable = (*Index)(nil)
	_ core.StorageSelector    = (*Index)(nil)
	_ core.Warmable           = (*Index)(nil)
)

// StorageMode implements core.StorageSelector.
func (ix *Index) StorageMode() string {
	if ix.opts.Storage == core.StorageMmap {
		return core.StorageMmap
	}
	return core.StorageHeap
}

// SaveIndexV2 implements core.SectionPersistable.
func (ix *Index) SaveIndexV2(w *diskfmt.Writer) error {
	if !ix.built {
		return fmt.Errorf("grapes: save before Build")
	}
	if err := ix.materializeAll(); err != nil {
		return err
	}
	keys := make([]string, 0, len(ix.features))
	for k := range ix.features {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)

	var keyDir, keyBlob, post []byte
	for _, k := range keys {
		p := ix.features[canon.Key(k)]
		ids := make([]uint32, len(p.ids))
		for i, id := range p.ids {
			ids[i] = uint32(id)
		}
		rec := binary.LittleEndian.AppendUint32(nil, 0)
		enc := diskfmt.EncodePostings(ids)
		binary.LittleEndian.PutUint32(rec, uint32(len(enc)))
		rec = append(rec, enc...)
		for i := range p.ids {
			rec = binary.LittleEndian.AppendUint32(rec, uint32(p.locs[i].count))
			rec = binary.LittleEndian.AppendUint32(rec, uint32(len(p.locs[i].starts)))
			for _, s := range p.locs[i].starts {
				rec = binary.LittleEndian.AppendUint32(rec, uint32(s))
			}
		}
		keyDir = binary.LittleEndian.AppendUint32(keyDir, uint32(len(keyBlob)))
		keyDir = binary.LittleEndian.AppendUint32(keyDir, uint32(len(k)))
		keyDir = binary.LittleEndian.AppendUint32(keyDir, uint32(len(p.ids)))
		keyDir = binary.LittleEndian.AppendUint32(keyDir, uint32(len(post)))
		keyDir = binary.LittleEndian.AppendUint32(keyDir, uint32(len(rec)))
		keyBlob = append(keyBlob, k...)
		post = append(post, rec...)
	}

	var compDir, compBlob []byte
	for i, comp := range ix.comps {
		compDir = binary.LittleEndian.AppendUint32(compDir, uint32(len(compBlob)))
		compDir = binary.LittleEndian.AppendUint32(compDir, uint32(len(comp)))
		compDir = binary.LittleEndian.AppendUint32(compDir, uint32(ix.compCount[i]))
		for _, c := range comp {
			compBlob = binary.LittleEndian.AppendUint32(compBlob, uint32(c))
		}
	}

	meta := binary.LittleEndian.AppendUint32(nil, uint32(ix.opts.MaxPathLen))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(ix.opts.Workers))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(ix.comps)))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(keys)))

	w.AddSection(secMeta, meta)
	w.AddSection(secKeyDir, keyDir)
	w.AddSection(secKeyBlob, keyBlob)
	w.AddSection(secPostings, post)
	w.AddSection(secCompDir, compDir)
	w.AddSection(secCompBlob, compBlob)
	return nil
}

// LoadIndexV2 implements core.SectionPersistable. Under storage=heap every
// section is decoded eagerly, exactly like the legacy gob path; under
// storage=mmap only the 16-byte meta section is touched and the index
// resolves features and component tables lazily through the reader, which
// it then owns (materializeAll closes it).
func (ix *Index) LoadIndexV2(r *diskfmt.Reader, ds *graph.Dataset) error {
	meta, err := r.Section(secMeta)
	if err != nil {
		return fmt.Errorf("grapes: load v2: %w", err)
	}
	if len(meta) != 16 {
		return fmt.Errorf("grapes: load v2: meta section of %d bytes", len(meta))
	}
	numGraphs := int(binary.LittleEndian.Uint32(meta[8:]))
	nFeat := int(binary.LittleEndian.Uint32(meta[12:]))
	if numGraphs != ds.Len() {
		return fmt.Errorf("grapes: load v2: index covers %d graphs, dataset has %d", numGraphs, ds.Len())
	}
	storage := ix.opts.Storage
	ix.opts = Options{
		MaxPathLen: int(binary.LittleEndian.Uint32(meta)),
		Workers:    int(binary.LittleEndian.Uint32(meta[4:])),
		Storage:    storage,
	}
	ix.opts.fill()

	if ix.StorageMode() == core.StorageMmap {
		ix.features = nil
		ix.comps = nil
		ix.compCount = nil
		ix.lazy = &lazyStore{
			r:        r,
			nFeat:    nFeat,
			nGraphs:  numGraphs,
			postings: make(map[canon.Key]*posting),
			comps:    make(map[graph.ID][]int32),
		}
		ix.ds = ds
		ix.built = true
		return nil
	}

	// Heap mode reads everything anyway, so verify every payload CRC up
	// front — a bit-flipped file fails here and triggers a rebuild.
	for _, sid := range []uint32{secKeyDir, secKeyBlob, secPostings, secCompDir, secCompBlob} {
		if err := r.VerifySection(sid); err != nil {
			return fmt.Errorf("grapes: load v2: %w", err)
		}
	}
	lz := &lazyStore{r: r, nFeat: nFeat, nGraphs: numGraphs}
	if err := lz.fetchSections(); err != nil {
		return fmt.Errorf("grapes: load v2: %w", err)
	}
	features := make(map[canon.Key]*posting, nFeat)
	for i := 0; i < nFeat; i++ {
		key, p, err := lz.decodeEntry(i)
		if err != nil {
			return fmt.Errorf("grapes: load v2: %w", err)
		}
		features[key] = p
	}
	comps := make([][]int32, numGraphs)
	compCount := make([]int, numGraphs)
	for i := 0; i < numGraphs; i++ {
		comp, cc, err := lz.decodeComp(graph.ID(i))
		if err != nil {
			return fmt.Errorf("grapes: load v2: %w", err)
		}
		comps[i], compCount[i] = comp, cc
	}
	for i, comp := range comps {
		if !ds.Alive(graph.ID(i)) {
			continue
		}
		if len(comp) != ds.Graphs[i].NumVertices() {
			return fmt.Errorf("grapes: load v2: graph %d has %d vertices, index recorded %d",
				i, ds.Graphs[i].NumVertices(), len(comp))
		}
	}
	ix.features = features
	ix.comps = comps
	ix.compCount = compCount
	ix.lazy = nil
	ix.ds = ds
	ix.built = true
	return nil
}

// WarmIndex implements core.Warmable: pre-fault the directory sections (a
// small fraction of the file) so first queries resolve features without a
// checksum pass. Postings stay lazy.
func (ix *Index) WarmIndex() {
	if lz := ix.lazy; lz != nil {
		lz.mu.Lock()
		lz.fetchSections()
		lz.mu.Unlock()
	}
}

// materializeAll converts a lazily-opened index into the fully resident
// form and releases the mapping. Mutations and saves call it: incremental
// maintenance splices heap structures in place, which mapped sections
// cannot support.
func (ix *Index) materializeAll() error {
	lz := ix.lazy
	if lz == nil {
		return nil
	}
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if err := lz.fetchSections(); err != nil {
		return fmt.Errorf("grapes: materialize: %w", err)
	}
	features := make(map[canon.Key]*posting, lz.nFeat)
	for i := 0; i < lz.nFeat; i++ {
		key, p, err := lz.decodeEntry(i)
		if err != nil {
			return fmt.Errorf("grapes: materialize: %w", err)
		}
		features[key] = p
	}
	comps := make([][]int32, lz.nGraphs)
	compCount := make([]int, lz.nGraphs)
	for i := 0; i < lz.nGraphs; i++ {
		comp, cc, err := lz.decodeComp(graph.ID(i))
		if err != nil {
			return fmt.Errorf("grapes: materialize: %w", err)
		}
		comps[i], compCount[i] = comp, cc
	}
	ix.features = features
	ix.comps = comps
	ix.compCount = compCount
	ix.lazy = nil
	obs.IndexResidentSet("Grapes", core.StorageMmap, 0)
	return lz.r.Close()
}

// lazyStore resolves Grapes index structures on demand from an open v2
// container, caching what queries touch.
type lazyStore struct {
	r       *diskfmt.Reader
	nFeat   int
	nGraphs int

	mu       sync.RWMutex
	fetched  bool
	keyDir   []byte
	keyBlob  []byte
	postRaw  []byte
	compDir  []byte
	compBlob []byte
	postings map[canon.Key]*posting // nil value caches "absent"
	comps    map[graph.ID][]int32
	resident int64
	err      error // sticky first section/decode failure
}

// fetchSections resolves the directory and payload sections. Callers hold
// lz.mu.
func (lz *lazyStore) fetchSections() error {
	if lz.fetched {
		return lz.err
	}
	fetch := func(id uint32, dst *[]byte, lazy bool) {
		if lz.err != nil {
			return
		}
		var b []byte
		var err error
		if lazy {
			b, err = lz.r.SectionLazy(id)
		} else {
			b, err = lz.r.Section(id)
		}
		if err != nil {
			lz.err = err
			return
		}
		*dst = b
	}
	// Directories are small and CRC-checked up front; the posting and
	// component payloads stay unverified so only the records a query
	// touches ever fault in (every decode below is bounds-checked).
	fetch(secKeyDir, &lz.keyDir, false)
	fetch(secKeyBlob, &lz.keyBlob, false)
	fetch(secPostings, &lz.postRaw, true)
	fetch(secCompDir, &lz.compDir, false)
	fetch(secCompBlob, &lz.compBlob, true)
	if lz.err == nil {
		if len(lz.keyDir) != lz.nFeat*keyDirEntrySize {
			lz.err = fmt.Errorf("grapes: key directory of %d bytes for %d features", len(lz.keyDir), lz.nFeat)
		} else if len(lz.compDir) != lz.nGraphs*compDirEntrySize {
			lz.err = fmt.Errorf("grapes: component directory of %d bytes for %d graphs", len(lz.compDir), lz.nGraphs)
		}
	}
	lz.fetched = lz.err == nil
	return lz.err
}

// findKey binary-searches the sorted key directory. Callers hold lz.mu
// (read or write) with sections fetched.
func (lz *lazyStore) findKey(key canon.Key) (int, bool) {
	want := []byte(string(key))
	lo, hi := 0, lz.nFeat
	for lo < hi {
		mid := (lo + hi) / 2
		e := lz.keyDir[mid*keyDirEntrySize:]
		off := binary.LittleEndian.Uint32(e)
		klen := binary.LittleEndian.Uint32(e[4:])
		if bytes.Compare(lz.keyBlob[off:off+klen], want) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < lz.nFeat {
		e := lz.keyDir[lo*keyDirEntrySize:]
		off := binary.LittleEndian.Uint32(e)
		klen := binary.LittleEndian.Uint32(e[4:])
		if bytes.Equal(lz.keyBlob[off:off+klen], want) {
			return lo, true
		}
	}
	return 0, false
}

// card returns a feature's posting cardinality without materializing it.
func (lz *lazyStore) card(key canon.Key) int {
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if lz.fetchSections() != nil {
		return 0
	}
	i, ok := lz.findKey(key)
	if !ok {
		return 0
	}
	return int(binary.LittleEndian.Uint32(lz.keyDir[i*keyDirEntrySize+8:]))
}

// decodeEntry decodes directory entry i into its key and posting. Callers
// hold lz.mu with sections fetched.
func (lz *lazyStore) decodeEntry(i int) (canon.Key, *posting, error) {
	e := lz.keyDir[i*keyDirEntrySize:]
	keyOff := binary.LittleEndian.Uint32(e)
	keyLen := binary.LittleEndian.Uint32(e[4:])
	card := binary.LittleEndian.Uint32(e[8:])
	postOff := binary.LittleEndian.Uint32(e[12:])
	postLen := binary.LittleEndian.Uint32(e[16:])
	if uint64(keyOff)+uint64(keyLen) > uint64(len(lz.keyBlob)) ||
		uint64(postOff)+uint64(postLen) > uint64(len(lz.postRaw)) {
		return "", nil, fmt.Errorf("grapes: directory entry %d out of bounds", i)
	}
	key := canon.Key(lz.keyBlob[keyOff : keyOff+keyLen])
	rec := lz.postRaw[postOff : postOff+postLen]
	if len(rec) < 4 {
		return "", nil, fmt.Errorf("grapes: posting record for %q truncated", string(key))
	}
	pLen := binary.LittleEndian.Uint32(rec)
	if uint64(4)+uint64(pLen) > uint64(len(rec)) {
		return "", nil, fmt.Errorf("grapes: posting record for %q truncated", string(key))
	}
	ps, err := diskfmt.MakePostings(rec[4 : 4+pLen])
	if err != nil {
		return "", nil, err
	}
	raw := ps.Decode()
	if uint32(len(raw)) != card {
		return "", nil, fmt.Errorf("grapes: posting for %q holds %d ids, directory says %d", string(key), len(raw), card)
	}
	p := &posting{ids: make(graph.IDSet, len(raw)), locs: make([]location, len(raw))}
	pos := 4 + int(pLen)
	for k, v := range raw {
		p.ids[k] = graph.ID(v)
		if pos+8 > len(rec) {
			return "", nil, fmt.Errorf("grapes: location payload for %q truncated", string(key))
		}
		count := int32(binary.LittleEndian.Uint32(rec[pos:]))
		nStarts := int(binary.LittleEndian.Uint32(rec[pos+4:]))
		pos += 8
		if pos+4*nStarts > len(rec) {
			return "", nil, fmt.Errorf("grapes: location payload for %q truncated", string(key))
		}
		starts := make([]int32, nStarts)
		for s := range starts {
			starts[s] = int32(binary.LittleEndian.Uint32(rec[pos+4*s:]))
		}
		pos += 4 * nStarts
		p.locs[k] = location{count: count, starts: starts}
	}
	return key, p, nil
}

// posting materializes (and caches) one feature's posting; nil means the
// feature is absent from the index.
func (lz *lazyStore) posting(key canon.Key) (*posting, error) {
	lz.mu.RLock()
	p, cached := lz.postings[key]
	lz.mu.RUnlock()
	if cached {
		return p, nil
	}
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if p, cached = lz.postings[key]; cached {
		return p, nil
	}
	if err := lz.fetchSections(); err != nil {
		return nil, err
	}
	i, ok := lz.findKey(key)
	if !ok {
		lz.postings[key] = nil
		return nil, nil
	}
	_, p, err := lz.decodeEntry(i)
	if err != nil {
		lz.err = err
		return nil, err
	}
	lz.postings[key] = p
	delta := int64(len(p.ids)) * 4
	for _, loc := range p.locs {
		delta += 28 + int64(len(loc.starts))*4
	}
	lz.resident += delta
	obs.IndexLazyLoadInc("Grapes")
	obs.IndexResidentAdd("Grapes", core.StorageMmap, delta)
	return p, nil
}

// decodeComp decodes graph id's component table. Callers hold lz.mu with
// sections fetched.
func (lz *lazyStore) decodeComp(id graph.ID) ([]int32, int, error) {
	e := lz.compDir[int(id)*compDirEntrySize:]
	off := binary.LittleEndian.Uint32(e)
	nVerts := binary.LittleEndian.Uint32(e[4:])
	cc := int(binary.LittleEndian.Uint32(e[8:]))
	if nVerts == 0 {
		return nil, cc, nil
	}
	if uint64(off)+4*uint64(nVerts) > uint64(len(lz.compBlob)) {
		return nil, 0, fmt.Errorf("grapes: component table for graph %d out of bounds", id)
	}
	comp := make([]int32, nVerts)
	for v := range comp {
		comp[v] = int32(binary.LittleEndian.Uint32(lz.compBlob[off+4*uint32(v):]))
	}
	return comp, cc, nil
}

// compsOf materializes (and caches) graph id's component table and count.
func (lz *lazyStore) compsOf(id graph.ID) ([]int32, int) {
	if int(id) < 0 || int(id) >= lz.nGraphs {
		return nil, 0
	}
	lz.mu.RLock()
	comp, cached := lz.comps[id]
	if cached && lz.fetched {
		cc := int(binary.LittleEndian.Uint32(lz.compDir[int(id)*compDirEntrySize+8:]))
		lz.mu.RUnlock()
		return comp, cc
	}
	lz.mu.RUnlock()
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if err := lz.fetchSections(); err != nil {
		return nil, 0
	}
	cc := int(binary.LittleEndian.Uint32(lz.compDir[int(id)*compDirEntrySize+8:]))
	if comp, cached = lz.comps[id]; cached {
		return comp, cc
	}
	comp, cc, err := lz.decodeComp(id)
	if err != nil {
		lz.err = err
		return nil, 0
	}
	lz.comps[id] = comp
	delta := int64(len(comp)) * 4
	lz.resident += delta
	obs.IndexLazyLoadInc("Grapes")
	obs.IndexResidentAdd("Grapes", core.StorageMmap, delta)
	return comp, cc
}

// numFeaturesLazy returns the feature count recorded in the directory.
func (lz *lazyStore) numFeatures() int { return lz.nFeat }

// residentBytes estimates the heap bytes pinned by materialized cache
// entries.
func (lz *lazyStore) residentBytes() int64 {
	lz.mu.RLock()
	defer lz.mu.RUnlock()
	return lz.resident
}
