package grapes

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/diskfmt"
	"repro/internal/gen"
	"repro/internal/workload"
)

// TestMmapNeverReadsBulkSections is the cold-start proof at the container
// level: a storage=mmap load touches only the meta and directory sections,
// and even answering queries resolves postings through sub-slices of the
// mapping — the bulk payload sections are never read in full. (Accessed
// reports a full payload read via Section/VerifySection; SectionLazy only
// slices the mapping.)
func TestMmapNeverReadsBulkSections(t *testing.T) {
	ds := gen.Synthetic(gen.SynthConfig{
		NumGraphs: 40, MeanNodes: 14, MeanDensity: 0.2, NumLabels: 4, Seed: 11,
	})
	queries, err := workload.Generate(ds, workload.Config{NumQueries: 4, QueryEdges: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	built := build(t, ds, Options{MaxPathLen: 3})
	path := filepath.Join(t.TempDir(), "grapes.v2")
	w := diskfmt.NewWriter(ds.Epoch(), ds.VersionTag(), "grapes")
	if err := built.SaveIndexV2(w); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := diskfmt.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	ix := New(Options{MaxPathLen: 3, Storage: core.StorageMmap})
	if err := ix.LoadIndexV2(r, ds); err != nil {
		t.Fatal(err)
	}
	if r.Accessed(secPostings) || r.Accessed(secCompBlob) {
		t.Fatalf("mmap load read a bulk section in full (postings=%v, compBlob=%v)",
			r.Accessed(secPostings), r.Accessed(secCompBlob))
	}
	for i, q := range queries {
		want, err := built.Candidates(q)
		if err != nil {
			t.Fatalf("heap candidates %d: %v", i, err)
		}
		got, err := ix.Candidates(q)
		if err != nil {
			t.Fatalf("mmap candidates %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Errorf("query %d candidates diverge: heap %v, mmap %v", i, want, got)
		}
	}
	// Queries materialized individual postings off the mapping, but the
	// bulk sections still were never read end to end.
	if r.Accessed(secPostings) || r.Accessed(secCompBlob) {
		t.Fatalf("querying read a bulk section in full")
	}
	if ix.SizeBytes() <= 0 {
		t.Fatalf("no resident bytes after queries; lazy loads did not happen")
	}
}
