// Package grapes implements the GRAPES index (Giugno et al., PLoS One 2013):
// exhaustive enumeration of label paths up to a maximum length, organized in
// a trie whose postings carry location information — for every (path, graph)
// pair, the set of start vertices and the occurrence count. Both indexing and
// verification are parallelized across a configurable number of workers, and
// verification runs VF2 against individual connected components selected via
// the location information, rather than whole graphs.
//
// Grapes is one of the six indexed subgraph query processing methods
// compared in the reproduced paper (Katsarou, Ntarmos, Triantafillou,
// PVLDB 2015), where its parallel build makes it the fastest indexer;
// register.go exposes it to the engine registry as "grapes".
package grapes

import (
	"context"
	"iter"
	"runtime"
	"sort"
	"sync"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/subiso"
)

// Defaults from §4.1 of the paper.
const (
	DefaultMaxPathLen = 4
	DefaultWorkers    = 6
)

// Options configures a Grapes index.
type Options struct {
	// MaxPathLen is the maximum path feature size in edges (paper: 4).
	MaxPathLen int
	// Workers is the build/verify parallelism (paper: 6 threads).
	Workers int
	// Storage selects how a persisted index is held when restored:
	// core.StorageHeap (default) decodes eagerly, core.StorageMmap keeps
	// the v2 container mapped and materializes postings lazily.
	Storage string
}

func (o *Options) fill() {
	if o.MaxPathLen <= 0 {
		o.MaxPathLen = DefaultMaxPathLen
	}
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers
	}
	if o.Workers > runtime.NumCPU()*4 {
		o.Workers = runtime.NumCPU() * 4
	}
}

// location is one (graph, path feature) posting entry.
type location struct {
	count  int32
	starts []int32 // sorted vertex ids where the path starts
}

// posting maps graph IDs to their location entry for one path feature.
type posting struct {
	ids  graph.IDSet
	locs []location // parallel to ids
}

// Index is a built Grapes index. Create with New, then Build.
type Index struct {
	opts Options
	ds   *graph.Dataset
	// features maps canonical path keys to postings.
	features map[canon.Key]*posting
	// comps[g] are the connected components of dataset graph g, as a
	// vertex -> component id array, with compCount[g] components.
	comps     [][]int32
	compCount []int
	// lazy, when non-nil, backs the index with a mapped v2 container
	// (storage=mmap): features/comps/compCount above are nil and every
	// access goes through the indirection helpers below.
	lazy  *lazyStore
	built bool
}

// postingCard returns a feature's posting cardinality (0 when absent)
// without materializing the posting in lazy mode.
func (ix *Index) postingCard(key canon.Key) int {
	if ix.lazy != nil {
		return ix.lazy.card(key)
	}
	if p := ix.features[key]; p != nil {
		return len(p.ids)
	}
	return 0
}

// getPosting resolves a feature's posting, materializing it on first
// touch in lazy mode. A nil posting with nil error means "absent".
func (ix *Index) getPosting(key canon.Key) (*posting, error) {
	if ix.lazy != nil {
		return ix.lazy.posting(key)
	}
	return ix.features[key], nil
}

// compsOf returns graph id's vertex→component table and component count.
func (ix *Index) compsOf(id graph.ID) ([]int32, int) {
	if ix.lazy != nil {
		return ix.lazy.compsOf(id)
	}
	if int(id) < 0 || int(id) >= len(ix.comps) {
		return nil, 0
	}
	return ix.comps[id], ix.compCount[id]
}

// New returns an unbuilt Grapes index.
func New(opts Options) *Index {
	opts.fill()
	return &Index{opts: opts}
}

// Name implements core.Method.
func (ix *Index) Name() string { return "Grapes" }

// buildShard is the per-worker accumulation of postings.
type buildShard struct {
	features map[canon.Key]map[graph.ID]*location
}

// Build implements core.Method. Graphs are partitioned across workers, each
// of which builds a private feature map; shards are merged at the end,
// mirroring the paper's synchronization-free parallel trie construction.
func (ix *Index) Build(ctx context.Context, ds *graph.Dataset) error {
	ix.ds = ds
	n := ds.Len()
	ix.comps = make([][]int32, n)
	ix.compCount = make([]int, n)

	workers := ix.opts.Workers
	if workers > n && n > 0 {
		workers = n
	}
	if workers == 0 {
		workers = 1
	}
	shards := make([]*buildShard, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := &buildShard{features: make(map[canon.Key]map[graph.ID]*location)}
			shards[w] = shard
			for i := w; i < n; i += workers {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				if !ds.Alive(graph.ID(i)) {
					continue // tombstoned slots index nothing
				}
				ix.indexGraph(shard, ds.Graphs[i])
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Merge shards into sorted postings.
	ix.features = make(map[canon.Key]*posting)
	for _, shard := range shards {
		for key, byGraph := range shard.features {
			p := ix.features[key]
			if p == nil {
				p = &posting{}
				ix.features[key] = p
			}
			for id, loc := range byGraph {
				p.ids = append(p.ids, id)
				p.locs = append(p.locs, *loc)
			}
		}
	}
	for _, p := range ix.features {
		sortPosting(p)
	}
	ix.built = true
	return nil
}

func sortPosting(p *posting) {
	idx := make([]int, len(p.ids))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p.ids[idx[a]] < p.ids[idx[b]] })
	ids := make(graph.IDSet, len(idx))
	locs := make([]location, len(idx))
	for i, j := range idx {
		ids[i] = p.ids[j]
		locs[i] = p.locs[j]
	}
	p.ids, p.locs = ids, locs
}

// indexGraph extracts all path features of one graph into the shard, and
// records the graph's connected components for verification.
func (ix *Index) indexGraph(shard *buildShard, g *graph.Graph) {
	id := g.ID()
	var labelBuf []graph.Label
	features.VisitPaths(g, ix.opts.MaxPathLen, func(vs []int32) bool {
		labelBuf = features.PathLabels(g, vs, labelBuf)
		key := canon.PathKey(labelBuf)
		byGraph := shard.features[key]
		if byGraph == nil {
			byGraph = make(map[graph.ID]*location)
			shard.features[key] = byGraph
		}
		loc := byGraph[id]
		if loc == nil {
			loc = &location{}
			byGraph[id] = loc
		}
		loc.count++
		start := vs[0]
		i := sort.Search(len(loc.starts), func(i int) bool { return loc.starts[i] >= start })
		if i == len(loc.starts) || loc.starts[i] != start {
			loc.starts = append(loc.starts, 0)
			copy(loc.starts[i+1:], loc.starts[i:])
			loc.starts[i] = start
		}
		return true
	})

	comp := make([]int32, g.NumVertices())
	comps := g.ConnectedComponents()
	for ci, members := range comps {
		for _, v := range members {
			comp[v] = int32(ci)
		}
	}
	ix.comps[id] = comp
	ix.compCount[id] = len(comps)
}

// queryFeature is one distinct path feature of the query.
type queryFeature struct {
	key   canon.Key
	count int32
}

// extractQueryFeatures enumerates the query's path features with counts.
func (ix *Index) extractQueryFeatures(q *graph.Graph) []queryFeature {
	acc := make(map[canon.Key]int32)
	var labelBuf []graph.Label
	features.VisitPaths(q, ix.opts.MaxPathLen, func(vs []int32) bool {
		labelBuf = features.PathLabels(q, vs, labelBuf)
		acc[canon.PathKey(labelBuf)]++
		return true
	})
	out := make([]queryFeature, 0, len(acc))
	for k, c := range acc {
		out = append(out, queryFeature{key: k, count: c})
	}
	// Deterministic order, rarest feature first for cheap intersections.
	// Cardinalities come from the posting directory, so in lazy mode this
	// never materializes a posting.
	sort.Slice(out, func(a, b int) bool {
		la, lb := ix.postingCard(out[a].key), ix.postingCard(out[b].key)
		if la != lb {
			return la < lb
		}
		return out[a].key < out[b].key
	})
	return out
}

// Candidates implements core.Method (used when the caller does not go
// through PlanQuery).
func (ix *Index) Candidates(q *graph.Graph) (graph.IDSet, error) {
	plan, err := ix.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	return plan.Candidates(), nil
}

// PlanQuery implements core.Planner: query features are extracted and their
// postings resolved eagerly; the count-dominance intersection itself runs
// lazily, candidate-major, when the plan's candidates are pulled (the plan
// implements core.ChunkedPlan), retaining per emitted candidate the
// components touched by matched path locations.
func (ix *Index) PlanQuery(q *graph.Graph) (core.QueryPlan, error) {
	if !ix.built {
		return nil, core.ErrNotBuilt
	}
	plan := &queryPlan{ix: ix, q: q, states: make(map[graph.ID][]bool)}
	qf := ix.extractQueryFeatures(q)
	if len(qf) == 0 {
		plan.empty = true // no path features: Grapes filters everything out
		return plan, nil
	}
	plan.qf = qf
	plan.postings = make([]*posting, len(qf))
	for k, f := range qf {
		p, err := ix.getPosting(f.key)
		if err != nil {
			return nil, err
		}
		if p == nil {
			plan.empty = true // some feature absent everywhere: no candidates
			return plan, nil
		}
		plan.postings[k] = p
	}
	return plan, nil
}

func markComponents(dst []bool, comp []int32, starts []int32) {
	for _, v := range starts {
		dst[comp[v]] = true
	}
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// chunkSize is the lazy producer's emission granularity.
const chunkSize = 256

// queryPlan holds one query's resolved feature postings and, as candidates
// are produced, their viable components. It implements core.ChunkedPlan:
// the dominance intersection is evaluated candidate-major over the rarest
// feature's posting list, so an early-terminated stream walks a prefix of
// one posting instead of intersecting all of them up front.
type queryPlan struct {
	ix       *Index
	q        *graph.Graph
	qf       []queryFeature
	postings []*posting // parallel to qf; qf[0] is the rarest (the driver)
	empty    bool
	// mu guards states: the producer inserts while verifier workers read.
	mu     sync.Mutex
	states map[graph.ID][]bool
	// cands caches the materialized candidate set for one-shot consumers.
	cands        graph.IDSet
	materialized bool
}

var _ core.ChunkedPlan = (*queryPlan)(nil)

// Candidates implements core.QueryPlan, materializing the chunk sequence
// once for one-shot consumers.
func (p *queryPlan) Candidates() graph.IDSet {
	if !p.materialized {
		var cands graph.IDSet
		for chunk := range p.Chunks() {
			cands = append(cands, chunk...)
		}
		p.cands = cands
		p.materialized = true
	}
	return p.cands
}

// Chunks implements core.ChunkedPlan: candidates stream out in ascending ID
// order by walking the rarest feature's posting and checking the remaining
// features through monotonic merge cursors, AND-ing viable components
// feature by feature exactly as the eager intersection did. Each emitted
// candidate's surviving components are recorded for Verify.
func (p *queryPlan) Chunks() iter.Seq[graph.IDSet] {
	return func(yield func(graph.IDSet) bool) {
		if p.empty {
			return
		}
		first := p.postings[0]
		js := make([]int, len(p.qf))
		var chunk graph.IDSet
		for i, id := range first.ids {
			if first.locs[i].count < p.qf[0].count {
				continue
			}
			comp, compCount := p.ix.compsOf(id)
			viable := make([]bool, compCount)
			markComponents(viable, comp, first.locs[i].starts)
			if !anyTrue(viable) {
				continue
			}
			ok := true
			var touched []bool
			for k := 1; k < len(p.qf); k++ {
				pp := p.postings[k]
				j := js[k]
				for j < len(pp.ids) && pp.ids[j] < id {
					j++
				}
				js[k] = j
				if j >= len(pp.ids) || pp.ids[j] != id || pp.locs[j].count < p.qf[k].count {
					ok = false
					break
				}
				touched = touched[:0]
				touched = append(touched, make([]bool, compCount)...)
				markComponents(touched, comp, pp.locs[j].starts)
				still := false
				for c := range viable {
					viable[c] = viable[c] && touched[c]
					still = still || viable[c]
				}
				if !still {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			p.mu.Lock()
			p.states[id] = viable
			p.mu.Unlock()
			chunk = append(chunk, id)
			if len(chunk) >= chunkSize {
				if !yield(chunk) {
					return
				}
				chunk = nil
			}
		}
		if len(chunk) > 0 {
			yield(chunk)
		}
	}
}

// Verify implements core.QueryPlan: the query is tested against each viable
// connected component of the candidate, in parallel when there are several,
// first match wins.
func (p *queryPlan) Verify(id graph.ID) bool {
	g := p.ix.ds.Graph(id)
	if g == nil {
		return false
	}
	p.mu.Lock()
	viable := p.states[id]
	p.mu.Unlock()
	comp, _ := p.ix.compsOf(id)
	var targets []int
	for c, ok := range viable {
		if ok {
			targets = append(targets, c)
		}
	}
	if len(targets) == 0 {
		return false
	}
	if len(targets) == 1 {
		return p.verifyComponent(g, comp, targets[0])
	}
	// Parallel per-component verification, first match wins.
	workers := p.ix.opts.Workers
	if workers > len(targets) {
		workers = len(targets)
	}
	found := make(chan bool, len(targets))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, c := range targets {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			found <- p.verifyComponent(g, comp, c)
		}(c)
	}
	wg.Wait()
	close(found)
	for ok := range found {
		if ok {
			return true
		}
	}
	return false
}

func (p *queryPlan) verifyComponent(g *graph.Graph, comp []int32, c int) bool {
	allowed := make([]bool, g.NumVertices())
	for v := range comp {
		if comp[v] == int32(c) {
			allowed[v] = true
		}
	}
	return subiso.ExistsRestricted(p.q, g, allowed)
}

// SizeBytes implements core.Method. A lazily-opened index reports only
// what has been materialized into the heap, which is the point of
// storage=mmap: the mapped file is the OS page cache's problem.
func (ix *Index) SizeBytes() int64 {
	if ix.lazy != nil {
		return ix.lazy.residentBytes()
	}
	var sz int64
	for key, p := range ix.features {
		sz += int64(len(key)) + 48
		sz += int64(len(p.ids)) * 4
		for _, loc := range p.locs {
			sz += 4 + int64(len(loc.starts))*4 + 24
		}
	}
	for _, comp := range ix.comps {
		sz += int64(len(comp)) * 4
	}
	return sz
}

// NumFeatures returns the number of distinct indexed path features.
func (ix *Index) NumFeatures() int {
	if ix.lazy != nil {
		return ix.lazy.numFeatures()
	}
	return len(ix.features)
}
