package repro

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5) at bench scale, plus per-method micro-benchmarks for the two hot
// stages (index construction, query processing) on the sane-default dataset.
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigN run prints the figure's four panels ((a) indexing time,
// (b) index size, (c) query time, (d) false positive ratio) via -v /
// b.Log output; cmd/sqbench produces the same tables standalone with larger
// scales.

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/workload"
)

// newBudgetedMethod constructs id with a tight mining budget on the methods
// that have one, via the registry-backed bench shim.
func newBudgetedMethod(id bench.MethodID) (core.Method, error) {
	return bench.NewMethod(id, bench.MethodLimits{MaxPatterns: 20000})
}

// runFigure executes one experiment per iteration and logs the report once.
func runFigure(b *testing.B, exp bench.Experiment, perSize bool) {
	b.Helper()
	ctx := context.Background()
	var report bytes.Buffer
	for i := 0; i < b.N; i++ {
		report.Reset()
		results, err := bench.Run(ctx, exp, nil)
		if err != nil {
			b.Fatalf("bench.Run: %v", err)
		}
		bench.WriteReport(&report, exp, results)
		if perSize {
			bench.WritePerSizeReport(&report, exp, results)
		}
	}
	b.Log(report.String())
}

// BenchmarkTable1Datasets regenerates Table 1: the characteristics of the
// (simulated) real datasets.
func BenchmarkTable1Datasets(b *testing.B) {
	var report bytes.Buffer
	for i := 0; i < b.N; i++ {
		report.Reset()
		names, stats := bench.Table1Stats(bench.BenchScale())
		bench.WriteTable1(&report, names, stats)
	}
	b.Log(report.String())
}

// BenchmarkFig1 regenerates Figure 1: indexing and query processing over
// the four real datasets.
func BenchmarkFig1(b *testing.B) {
	runFigure(b, bench.Fig1(bench.BenchScale()), false)
}

// BenchmarkFig2 regenerates Figure 2: performance versus number of nodes
// per graph.
func BenchmarkFig2(b *testing.B) {
	runFigure(b, bench.Fig2(bench.BenchScale()), false)
}

// BenchmarkFig3 regenerates Figure 3 (performance versus density) and, from
// the same sweep, Figure 4 (per-query-size query times).
func BenchmarkFig3AndFig4(b *testing.B) {
	runFigure(b, bench.Fig3(bench.BenchScale()), true)
}

// BenchmarkFig5 regenerates Figure 5: performance versus number of distinct
// labels.
func BenchmarkFig5(b *testing.B) {
	runFigure(b, bench.Fig5(bench.BenchScale()), false)
}

// BenchmarkFig6 regenerates Figure 6: performance versus number of graphs
// in the dataset.
func BenchmarkFig6(b *testing.B) {
	runFigure(b, bench.Fig6(bench.BenchScale()), false)
}

// saneDefaultDataset is the bench-scale analogue of the paper's "sane
// defaults" dataset (§4.2).
func saneDefaultDataset() *Dataset {
	s := bench.BenchScale()
	return NewSyntheticDataset(SynthConfig{
		NumGraphs: s.Graphs, MeanNodes: s.Nodes, MeanDensity: s.Density,
		NumLabels: s.Labels, Seed: 7,
	})
}

// BenchmarkIndexBuild measures index construction per method on the
// sane-default dataset.
func BenchmarkIndexBuild(b *testing.B) {
	ds := saneDefaultDataset()
	for _, id := range bench.AllMethods {
		id := id
		b.Run(string(id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := newBudgetedMethod(id)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Build(context.Background(), ds); err != nil {
					b.Skipf("DNF: %v", err)
				}
			}
		})
	}
}

// BenchmarkQuery measures end-to-end query processing (filter + verify) per
// method on the sane-default dataset with 8-edge queries.
func BenchmarkQuery(b *testing.B) {
	ds := saneDefaultDataset()
	queries, err := GenerateQueries(ds, workload.Config{NumQueries: 10, QueryEdges: 8, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range bench.AllMethods {
		id := id
		b.Run(string(id), func(b *testing.B) {
			m, err := newBudgetedMethod(id)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Build(context.Background(), ds); err != nil {
				b.Skipf("DNF: %v", err)
			}
			proc := core.NewProcessor(m, ds)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := proc.Query(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblations runs the design-choice ablation studies (path length,
// CT-Index feature size and fingerprint width, Grapes parallelism, gIndex
// discriminative gate) on the sane-default dataset.
func BenchmarkAblations(b *testing.B) {
	s := bench.BenchScale()
	ds := bench.AblationDataset(s)
	var report bytes.Buffer
	for i := 0; i < b.N; i++ {
		report.Reset()
		for _, ab := range bench.Ablations() {
			results, err := bench.RunAblation(context.Background(), ab, ds, s, nil)
			if err != nil {
				b.Fatalf("%s: %v", ab.Name, err)
			}
			bench.WriteAblationReport(&report, ab, results)
		}
	}
	b.Log(report.String())
}

// BenchmarkBruteForceBaseline measures the naive no-index VF2 scan the
// paper's introduction motivates against.
func BenchmarkBruteForceBaseline(b *testing.B) {
	ds := saneDefaultDataset()
	queries, err := GenerateQueries(ds, workload.Config{NumQueries: 10, QueryEdges: 8, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BruteForceAnswers(context.Background(), ds, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}
