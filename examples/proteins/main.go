// Proteins: motif search over a PPI-like dataset of few, large,
// medium-degree interaction networks — the regime where the paper finds
// exhaustive path indexes (GGSX, Grapes) still standing while richer
// feature extraction gets expensive. The example indexes the dataset with
// both GGSX and Grapes, runs the same random-walk motif workload through
// each, and reports how the location information changes the work done.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// Simulated PPI dataset: 10 networks of ~250 proteins, average degree
	// ~5.5, 46 protein families (labels); all networks disconnected, as in
	// Table 1.
	cfg := repro.PPI.Scaled(2, 20)
	cfg.AvgEdges = cfg.AvgNodes * 2.75
	cfg.Seed = 17
	ds := repro.NewRealisticDataset(cfg)
	st := ds.ComputeStats()
	fmt.Printf("interactomes: %d networks, avg %.0f proteins / %.0f interactions, %d disconnected\n",
		st.NumGraphs, st.AvgNodes, st.AvgEdges, st.NumDisconnected)

	// Motif workload: 16-edge connected subnetworks.
	queries, err := repro.GenerateQueries(ds, repro.WorkloadConfig{
		NumQueries: 10, QueryEdges: 16, Seed: 18,
	})
	if err != nil {
		log.Fatalf("workload: %v", err)
	}

	ctx := context.Background()
	for _, spec := range []string{"ggsx", "grapes:workers=6"} {
		t0 := time.Now()
		eng, err := repro.Open(ctx, ds, repro.WithSpec(spec))
		if err != nil {
			fmt.Printf("%-8s DNF during indexing: %v\n", spec, err)
			continue
		}
		buildTime := time.Since(t0)
		name := eng.Method().Name()

		var queryTime time.Duration
		var cands, answers []repro.IDSet
		for _, q := range queries {
			res, err := eng.Query(ctx, q)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			queryTime += res.TotalTime()
			cands = append(cands, res.Candidates)
			answers = append(answers, res.Answers)
		}
		fmt.Printf("%-8s index %8v (%6.1f MB) | %d motif queries in %8v | FP ratio %.3f\n",
			name, buildTime.Round(time.Millisecond), float64(eng.Method().SizeBytes())/(1<<20),
			len(queries), queryTime.Round(time.Millisecond),
			repro.FalsePositiveRatio(cands, answers))
	}

	fmt.Println("\nGrapes pays more memory for start-vertex locations, letting it verify")
	fmt.Println("against single connected components of these disconnected networks;")
	fmt.Println("GGSX keeps only occurrence counts and verifies whole graphs.")
}
