// Quickstart: generate a small dataset, build a Grapes index, and answer a
// subgraph query through the filter-and-verify pipeline.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// 1. A synthetic dataset: 200 connected graphs of ~30 vertices each,
	//    density 0.1, labels drawn from an 8-letter alphabet.
	ds := repro.NewSyntheticDataset(repro.SynthConfig{
		NumGraphs:   200,
		MeanNodes:   30,
		MeanDensity: 0.1,
		NumLabels:   8,
		Seed:        1,
	})
	stats := ds.ComputeStats()
	fmt.Printf("dataset: %d graphs, avg %.1f nodes / %.1f edges\n",
		stats.NumGraphs, stats.AvgNodes, stats.AvgEdges)

	// 2. Build a Grapes index (exhaustive paths <= 4 edges, built in
	//    parallel, with location information for component-wise verify).
	idx := repro.NewIndex(repro.Grapes)
	t0 := time.Now()
	if err := idx.Build(context.Background(), ds); err != nil {
		log.Fatalf("indexing: %v", err)
	}
	fmt.Printf("index:   %s built in %v (%.2f MB)\n",
		idx.Name(), time.Since(t0).Round(time.Millisecond),
		float64(idx.SizeBytes())/(1<<20))

	// 3. A query workload: 8-edge subgraphs extracted by random walks, so
	//    every query has at least one answer.
	queries, err := repro.GenerateQueries(ds, repro.WorkloadConfig{
		NumQueries: 5, QueryEdges: 8, Seed: 2,
	})
	if err != nil {
		log.Fatalf("workload: %v", err)
	}

	// 4. Filter and verify.
	proc := repro.NewProcessor(idx, ds)
	for i, q := range queries {
		res, err := proc.Query(q)
		if err != nil {
			log.Fatalf("query %d: %v", i, err)
		}
		fmt.Printf("query %d: %3d candidates -> %3d answers in %v (FP ratio %.2f)\n",
			i, len(res.Candidates), len(res.Answers),
			res.TotalTime().Round(time.Microsecond), res.FalsePositiveRatio())
	}
}
