// Quickstart: generate a small dataset, open an engine over it, and answer
// subgraph queries through the plan-based filter-and-verify pipeline.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// 1. A synthetic dataset: 200 connected graphs of ~30 vertices each,
	//    density 0.1, labels drawn from an 8-letter alphabet.
	ds := repro.NewSyntheticDataset(repro.SynthConfig{
		NumGraphs:   200,
		MeanNodes:   30,
		MeanDensity: 0.1,
		NumLabels:   8,
		Seed:        1,
	})
	stats := ds.ComputeStats()
	fmt.Printf("dataset: %d graphs, avg %.1f nodes / %.1f edges\n",
		stats.NumGraphs, stats.AvgNodes, stats.AvgEdges)

	// 2. Open an engine with a Grapes index (exhaustive paths <= 4 edges,
	//    built in parallel). The method and its parameters are one spec
	//    string; any registered method works here — try
	//    "ctindex:fingerprintBits=1024" or "gIndex".
	ctx := context.Background()
	t0 := time.Now()
	eng, err := repro.Open(ctx, ds, repro.WithSpec("grapes:workers=8"))
	if err != nil {
		log.Fatalf("opening engine: %v", err)
	}
	fmt.Printf("index:   %s built in %v (%.2f MB)\n",
		eng.Method().Name(), time.Since(t0).Round(time.Millisecond),
		float64(eng.Method().SizeBytes())/(1<<20))

	// 3. A query workload: 8-edge subgraphs extracted by random walks, so
	//    every query has at least one answer.
	queries, err := repro.GenerateQueries(ds, repro.WorkloadConfig{
		NumQueries: 5, QueryEdges: 8, Seed: 2,
	})
	if err != nil {
		log.Fatalf("workload: %v", err)
	}

	// 4. Filter and verify.
	for i, q := range queries {
		res, err := eng.Query(ctx, q)
		if err != nil {
			log.Fatalf("query %d: %v", i, err)
		}
		fmt.Printf("query %d: %3d candidates -> %3d answers in %v (FP ratio %.2f)\n",
			i, len(res.Candidates), len(res.Answers),
			res.TotalTime().Round(time.Microsecond), res.FalsePositiveRatio())
	}

	// 5. Or stream answers as verification confirms them, without
	//    materializing the answer set.
	fmt.Printf("query 0 streamed:")
	for id, err := range eng.Stream(ctx, queries[0]) {
		if err != nil {
			log.Fatalf("stream: %v", err)
		}
		fmt.Printf(" %d", id)
	}
	fmt.Println()
}
