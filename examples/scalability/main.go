// Scalability: reproduce the paper's central finding — every indexing
// method has a breaking point, and they fall in a fixed order. The example
// sweeps graph size upward under a fixed per-method time budget (the
// analogue of the paper's 8-hour kill switch) and prints the survival
// matrix: frequent-mining methods die first, fingerprint methods follow,
// and the exhaustive path methods last the longest.
package main

import (
	"context"
	"fmt"
	"time"

	"repro"
)

func main() {
	budget := 10 * time.Second
	nodeGrid := []int{20, 40, 60, 80, 100}
	fmt.Printf("per-method budget %v per point; x = nodes per graph (40 graphs, density 0.06)\n\n", budget)
	fmt.Printf("%-12s", "method")
	for _, n := range nodeGrid {
		fmt.Printf(" %6d", n)
	}
	fmt.Println()

	// Mining methods get a tight pattern budget so a stress point gives up
	// quickly instead of hanging; the spec syntax carries it per method.
	specs := []string{
		"gIndex:maxPatterns=20000", "tree+delta:maxPatterns=20000",
		"gCode", "CTindex", "GGSX", "Grapes",
	}
	for _, spec := range specs {
		m0, err := repro.New(spec)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s", m0.Name())
		dead := false
		for _, n := range nodeGrid {
			if dead {
				fmt.Printf(" %6s", "-")
				continue
			}
			ds := repro.NewSyntheticDataset(repro.SynthConfig{
				NumGraphs: 40, MeanNodes: n, MeanDensity: 0.06, NumLabels: 10,
				Seed: int64(n),
			})
			m, err := repro.New(spec)
			if err != nil {
				panic(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), budget)
			err = m.Build(ctx, ds)
			cancel()
			if err != nil {
				fmt.Printf(" %6s", "DNF")
				dead = true // the paper stops a method once it first fails
				continue
			}
			fmt.Printf(" %6s", "ok")
		}
		fmt.Println()
	}

	fmt.Println("\nthe casualty order matches §6: frequent mining (gIndex, Tree+Δ) breaks")
	fmt.Println("first; spectral/fingerprint encodings (gCode, CT-Index) go next as")
	fmt.Println("enumeration costs grow; exhaustive path indexing (GGSX, Grapes) survives")
	fmt.Println("longest — until its index no longer fits in memory (Figure 6).")
}
