// Serving: the long-lived query service over the engine. The example
// builds a GGSX index, wraps it in the HTTP/JSON serving layer (result
// cache + admission control), serves it on a loopback listener, and then
// plays a repeated-traffic client against it: each query is sent three
// times — twice as isomorphic vertex permutations — to show that the
// canonical-DFS-code cache keying hits on structure, not bytes. It ends by
// printing the /stats counters and draining gracefully.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	ds := repro.NewSyntheticDataset(repro.SynthConfig{
		NumGraphs: 120, MeanNodes: 50, MeanDensity: 0.06, NumLabels: 8, Seed: 7,
	})
	queries, err := repro.GenerateQueries(ds, repro.WorkloadConfig{
		NumQueries: 6, QueryEdges: 8, Seed: 8,
	})
	if err != nil {
		panic(err)
	}
	eng, err := repro.Open(ctx, ds, repro.WithSpec("ggsx"))
	if err != nil {
		panic(err)
	}

	srv := repro.NewServer(eng, repro.ServerConfig{Spec: "ggsx", Workers: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d graphs (ggsx) on %s\n\n", ds.Len(), base)

	fmt.Printf("%-8s %10s %8s %8s %12s\n", "query", "variant", "answers", "cached", "served")
	for i, q := range queries {
		for rep := 0; rep < 3; rep++ {
			sent := q
			if rep > 0 {
				// An isomorphic copy with shuffled vertex ids: same
				// answers, same cache entry.
				sent = workload.Permute(q, int64(100*i+rep))
			}
			body, _ := json.Marshal(server.GraphToJSON(sent, &ds.Dict))
			resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				panic(err)
			}
			var qr server.QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				panic(err)
			}
			resp.Body.Close()
			fmt.Printf("%-8d %10s %8d %8v %12v\n", i, variant(rep), len(qr.Answers),
				qr.Cached, (time.Duration(qr.TotalUs) * time.Microsecond).Round(time.Microsecond))
		}
	}

	resp, err := http.Get(base + "/stats")
	if err != nil {
		panic(err)
	}
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Printf("\n/stats: %d queries, cache hits=%d misses=%d entries=%d (%.0f%% hit ratio)\n",
		stats.Requests.Query, stats.Cache.Hits, stats.Cache.Misses, stats.Cache.Entries,
		100*float64(stats.Cache.Hits)/float64(stats.Requests.Query))

	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		panic(err)
	}
	fmt.Println("drained cleanly")
}

func variant(rep int) string {
	if rep == 0 {
		return "original"
	}
	return fmt.Sprintf("permuted%d", rep)
}
