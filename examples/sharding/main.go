// Sharding: the engine-level answer to the paper's central finding that
// index construction cost is what breaks these methods at scale. The
// example builds the same GGSX index unsharded and as 1/2/4/8 hash-
// partitioned shards (per-shard builds run concurrently on a
// GOMAXPROCS-bounded pool), verifies that every configuration returns an
// identical answer set, and prints the build wall-time, serial-equivalent
// time, and implied parallel speedup per shard count.
package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()
	ds := repro.NewSyntheticDataset(repro.SynthConfig{
		NumGraphs: 120, MeanNodes: 60, MeanDensity: 0.05, NumLabels: 10, Seed: 7,
	})
	queries, err := repro.GenerateQueries(ds, repro.WorkloadConfig{
		NumQueries: 10, QueryEdges: 8, Seed: 8,
	})
	if err != nil {
		panic(err)
	}

	flat, err := repro.Open(ctx, ds, repro.WithSpec("ggsx"))
	if err != nil {
		panic(err)
	}
	want := make([]repro.IDSet, len(queries))
	for i, q := range queries {
		res, err := flat.Query(ctx, q)
		if err != nil {
			panic(err)
		}
		want[i] = res.Answers
	}
	fmt.Printf("unsharded ggsx over %d graphs: build %v (%d cores)\n\n",
		ds.Len(), flat.BuildStats().Elapsed.Round(time.Millisecond), runtime.GOMAXPROCS(0))

	fmt.Printf("%-8s %12s %12s %9s %8s\n", "shards", "wall", "serial-eq", "speedup", "answers")
	for _, n := range []int{1, 2, 4, 8} {
		s, err := repro.OpenSharded(ctx, ds, n, repro.WithSpec("ggsx"))
		if err != nil {
			panic(err)
		}
		var serial time.Duration
		for _, st := range s.ShardStats() {
			serial += st.Elapsed
		}
		match := "identical"
		for i, q := range queries {
			res, err := s.Query(ctx, q)
			if err != nil {
				panic(err)
			}
			if !res.Answers.Equal(want[i]) {
				match = "DIVERGED"
			}
		}
		wall := s.BuildStats().Elapsed
		fmt.Printf("%-8d %12v %12v %8.2fx %8s\n",
			n, wall.Round(time.Millisecond), serial.Round(time.Millisecond),
			float64(serial)/float64(wall), match)
	}

	fmt.Println("\neach shard persists as an independent file (manifest + .shard-i), so a")
	fmt.Println("corrupt shard rebuilds alone; see docs/ARCHITECTURE.md for the layout.")
}
