// Methodpick: "choosing the right index method for user needs" (§6 of the
// paper) as a runnable decision aid. Every method in the engine registry is
// built over the same dataset and measured on the same workload; the
// resulting table shows the trade-offs the paper's conclusions describe —
// exhaustive path methods win on time but spend memory, fingerprint methods
// stay tiny but filter weakly, frequent-mining methods pay heavy indexing
// for moderate gains.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	ds := repro.NewSyntheticDataset(repro.SynthConfig{
		NumGraphs:   150,
		MeanNodes:   40,
		MeanDensity: 0.06,
		NumLabels:   12,
		Seed:        23,
	})
	st := ds.ComputeStats()
	fmt.Printf("dataset: %d graphs, avg %.0f nodes / %.0f edges, %d labels\n\n",
		st.NumGraphs, st.AvgNodes, st.AvgEdges, st.NumLabels)

	var queries []*repro.Graph
	for _, size := range []int{4, 8, 16} {
		qs, err := repro.GenerateQueries(ds, repro.WorkloadConfig{
			NumQueries: 5, QueryEdges: size, Seed: int64(size),
		})
		if err != nil {
			log.Fatalf("workload: %v", err)
		}
		queries = append(queries, qs...)
	}

	fmt.Printf("%-12s %12s %12s %14s %10s\n",
		"method", "build", "index size", "avg query", "FP ratio")
	// The registry knows every constructible method; skip the NoIndex
	// baseline, which the paper's figures exclude.
	for _, info := range repro.Methods() {
		if info.Name == "noindex" {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		t0 := time.Now()
		eng, err := repro.Open(ctx, ds, repro.WithSpec(info.Name))
		buildTime := time.Since(t0)
		if err != nil {
			fmt.Printf("%-12s %12s (DNF: %v)\n", info.Display, "-", err)
			cancel()
			continue
		}
		var total time.Duration
		var cands, answers []repro.IDSet
		for _, q := range queries {
			res, err := eng.Query(ctx, q)
			if err != nil {
				log.Fatalf("%s: %v", info.Display, err)
			}
			total += res.TotalTime()
			cands = append(cands, res.Candidates)
			answers = append(answers, res.Answers)
		}
		cancel()
		fmt.Printf("%-12s %12v %11.2fMB %14v %10.3f\n",
			info.Display, buildTime.Round(time.Millisecond),
			float64(eng.Method().SizeBytes())/(1<<20),
			(total / time.Duration(len(queries))).Round(time.Microsecond),
			repro.FalsePositiveRatio(cands, answers))
	}

	fmt.Println("\npicking by criterion (§6 of the paper):")
	fmt.Println("  smallest index            -> CT-Index / gCode (fixed-width encodings)")
	fmt.Println("  fastest indexing          -> Grapes / GGSX (exhaustive paths)")
	fmt.Println("  fastest query processing  -> Grapes / GGSX, then CT-Index")
	fmt.Println("  very large inputs         -> GGSX outscales Grapes; gCode outscales mining")
}
