// Adaptive routing: the paper's headline finding is that no single indexed
// subgraph query method wins everywhere — the best method flips with query
// size, shape, and label rarity. This example co-builds three method
// indexes over one dataset, serves a mixed-shape workload through each
// routing policy (static heuristics, online-learned cost model, top-2
// race), and compares their total latency against every fixed method and
// the per-query best-fixed-method oracle.
package main

import (
	"context"
	"fmt"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()
	ds := repro.NewSyntheticDataset(repro.SynthConfig{
		NumGraphs: 150, MeanNodes: 50, MeanDensity: 0.06, NumLabels: 12, Seed: 7,
	})
	// A mixed workload: small and large queries, every shape, shuffled —
	// the traffic no fixed method choice is right for.
	queries, err := repro.GenerateMixedQueries(ds, repro.MixedWorkloadConfig{
		NumQueries: 60, Sizes: []int{4, 8, 16}, Seed: 9,
	})
	if err != nil {
		panic(err)
	}

	methods := []string{"grapes", "ggsx", "gcode"}

	// Fixed baselines: each method runs the whole workload alone.
	fixed := make(map[string][]time.Duration, len(methods))
	for _, name := range methods {
		eng, err := repro.Open(ctx, ds, repro.WithSpec(name))
		if err != nil {
			panic(err)
		}
		times := make([]time.Duration, len(queries))
		for i, q := range queries {
			res, err := eng.Query(ctx, q)
			if err != nil {
				panic(err)
			}
			times[i] = res.TotalTime()
		}
		fixed[name] = times
	}
	var oracle time.Duration
	for i := range queries {
		best := fixed[methods[0]][i]
		for _, name := range methods[1:] {
			if fixed[name][i] < best {
				best = fixed[name][i]
			}
		}
		oracle += best
	}

	fmt.Printf("%-16s %12s %10s\n", "variant", "total", "vs oracle")
	for _, name := range methods {
		var total time.Duration
		for _, t := range fixed[name] {
			total += t
		}
		fmt.Printf("fixed:%-10s %12v %+9.1f%%\n", name, total.Round(time.Microsecond),
			100*(float64(total)/float64(oracle)-1))
	}

	// Routed: one router per policy over the same dataset; the learned
	// policy warms its cost model as the traffic flows.
	for _, policy := range []string{"static", "learned", "race"} {
		m, err := repro.OpenRouted(ctx, ds, repro.RouterConfig{
			Methods: methods,
			Options: repro.RouterOptions{Policy: policy, Epsilon: 0.1, Seed: 1},
		})
		if err != nil {
			panic(err)
		}
		var total time.Duration
		for _, q := range queries {
			res, err := m.Query(ctx, q)
			if err != nil {
				panic(err)
			}
			total += res.TotalTime()
		}
		fmt.Printf("router:%-9s %12v %+9.1f%%", policy, total.Round(time.Microsecond),
			100*(float64(total)/float64(oracle)-1))
		snap := m.Stats()
		fmt.Printf("   routed:")
		for _, ms := range snap.Methods {
			fmt.Printf(" %s %.0f%%", ms.Method, 100*ms.WinRate)
		}
		fmt.Println()
	}
	fmt.Printf("%-16s %12v %+9.1f%%\n", "oracle", oracle.Round(time.Microsecond), 0.0)

	fmt.Println("\nevery variant returns identical answers; routing only moves latency.")
	fmt.Println("serve it with: sqserve -data ... -method router:methods=grapes+ggsx+gcode")
}
