// Molecules: substructure search over an AIDS-like chemical compound
// dataset — the workload that motivates the paper's introduction. A
// carbon-ring query (the skeleton of benzene) and a hydroxyl-tail query are
// searched with CT-Index, whose tree+cycle fingerprints were designed for
// exactly this kind of cyclic chemical substructure, and the answers are
// cross-checked against the naive VF2 scan.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// Simulated AIDS antiviral screen dataset (Table 1 regime, scaled to
	// 400 compounds): small sparse graphs, average degree ~2, 62 labels.
	cfg := repro.AIDS.Scaled(100, 1)
	cfg.Seed = 11
	ds := repro.NewRealisticDataset(cfg)
	st := ds.ComputeStats()
	fmt.Printf("compound library: %d molecules, avg %.1f atoms, %d atom types\n",
		st.NumGraphs, st.AvgNodes, st.NumLabels)

	ctx := context.Background()
	t0 := time.Now()
	eng, err := repro.Open(ctx, ds, repro.WithSpec("ctindex"))
	if err != nil {
		log.Fatalf("indexing: %v", err)
	}
	fmt.Printf("CT-Index fingerprints built in %v (%.0f KB total)\n",
		time.Since(t0).Round(time.Millisecond), float64(eng.Method().SizeBytes())/1024)

	// Treat the two most frequent atom types in the library as "C" and "O".
	carbon, oxygen := topTwoLabels(ds)

	// Query 1: a three-carbon chain (propane skeleton).
	chain := &repro.Graph{}
	c1 := chain.AddVertex(carbon)
	c2 := chain.AddVertex(carbon)
	c3 := chain.AddVertex(carbon)
	chain.MustAddEdge(c1, c2)
	chain.MustAddEdge(c2, c3)

	// Query 2: carbon pair with an oxygen tail (alcohol-like fragment).
	tail := &repro.Graph{}
	t1 := tail.AddVertex(carbon)
	t2 := tail.AddVertex(carbon)
	o := tail.AddVertex(oxygen)
	tail.MustAddEdge(t1, t2)
	tail.MustAddEdge(t2, o)

	for _, q := range []struct {
		name  string
		query *repro.Graph
	}{
		{"propane skeleton (C-C-C)", chain},
		{"alcohol fragment (C-C-O)", tail},
	} {
		res, err := eng.Query(ctx, q.query)
		if err != nil {
			log.Fatalf("%s: %v", q.name, err)
		}
		truth, err := repro.BruteForceAnswers(ctx, ds, q.query)
		if err != nil {
			log.Fatal(err)
		}
		status := "answers verified against naive scan"
		if !res.Answers.Equal(truth) {
			status = "MISMATCH with naive scan!"
		}
		fmt.Printf("%-28s %4d candidates -> %4d matching molecules in %v (%s)\n",
			q.name, len(res.Candidates), len(res.Answers),
			res.TotalTime().Round(time.Microsecond), status)
	}
}

// topTwoLabels returns the two most frequent vertex labels in the dataset.
func topTwoLabels(ds *repro.Dataset) (first, second repro.Label) {
	counts := map[repro.Label]int{}
	for _, g := range ds.Graphs {
		for _, l := range g.Labels() {
			counts[l]++
		}
	}
	best, next := repro.Label(0), repro.Label(0)
	bestN, nextN := -1, -1
	for l, n := range counts {
		switch {
		case n > bestN:
			next, nextN = best, bestN
			best, bestN = l, n
		case n > nextN:
			next, nextN = l, n
		}
	}
	return best, next
}
