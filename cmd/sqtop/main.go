// Command sqtop is a terminal dashboard over a running sqserve (flat
// server or cluster coordinator): one glance shows health, traffic, tail
// latency per method, cache efficiency, and — against a coordinator —
// every node's state from a single federated scrape.
//
// Usage:
//
//	sqtop -target http://127.0.0.1:7474              # live, redrawn every -interval
//	sqtop -target http://127.0.0.1:7600 -once        # one plain-text snapshot
//	sqtop -target http://127.0.0.1:7600 -once -json  # machine-readable snapshot
//
// sqtop first tries GET /metrics/cluster (the coordinator's federation
// endpoint) and falls back to GET /metrics, so the same invocation works
// against either face. GET /health/score feeds the header's verdict and
// reasons when the target serves it.
//
// QPS, error rate, and the per-method p50/p95/p99 are computed from deltas
// between consecutive scrapes — the tail the operator sees is the tail of
// the last interval, not of the process's lifetime. The first frame (and
// -once) falls back to lifetime values with QPS 0. Everything renders with
// the standard library and ANSI escapes only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:7474", "base URL of an sqserve (flat server or coordinator)")
		interval = flag.Duration("interval", 2*time.Second, "refresh period in live mode")
		once     = flag.Bool("once", false, "print one snapshot and exit (no ANSI)")
		asJSON   = flag.Bool("json", false, "emit the snapshot as JSON (implies -once)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request budget")
	)
	flag.Parse()
	if err := run(*target, *interval, *once || *asJSON, *asJSON, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "sqtop:", err)
		os.Exit(1)
	}
}

func run(target string, interval time.Duration, once, asJSON bool, timeout time.Duration) error {
	sc := &scraper{target: strings.TrimSuffix(target, "/"), client: &http.Client{Timeout: timeout}}
	cur, err := sc.scrape()
	if err != nil {
		return err
	}
	snap := build(sc, cur, nil, 0)
	if once {
		if asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(snap)
		}
		fmt.Print(render(snap, false))
		return nil
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	fmt.Print(render(snap, true))
	prev, prevAt := cur, snap.At
	for range time.Tick(interval) {
		cur, err := sc.scrape()
		if err != nil {
			fmt.Printf("\x1b[H\x1b[2Jsqtop — %s\n\n  scrape failed: %v (retrying every %v)\n", sc.target, err, interval)
			continue
		}
		snap := build(sc, cur, prev, snap.At.Sub(prevAt).Seconds())
		prev, prevAt = cur, snap.At
		fmt.Print(render(snap, true))
	}
	return nil
}

// scraper fetches and parses the target's exposition, discovering once
// whether the federation endpoint exists.
type scraper struct {
	target string
	client *http.Client
	source string // "/metrics/cluster" or "/metrics", chosen on first scrape
}

func (s *scraper) scrape() (*obs.PromSnapshot, error) {
	if s.source == "" {
		if _, err := s.fetch("/metrics/cluster"); err == nil {
			s.source = "/metrics/cluster"
		} else {
			s.source = "/metrics"
		}
	}
	body, err := s.fetch(s.source)
	if err != nil {
		return nil, err
	}
	return obs.ParsePromText(strings.NewReader(string(body)))
}

func (s *scraper) fetch(path string) ([]byte, error) {
	resp, err := s.client.Get(s.target + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}

// health fetches /health/score; a target without it just loses the header
// verdict.
func (s *scraper) health() *healthReport {
	resp, err := s.client.Get(s.target + "/health/score")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var h healthReport
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h) != nil {
		return nil
	}
	return &h
}

type healthReport struct {
	Status string        `json:"status"`
	Checks []healthCheck `json:"checks"`
}

type healthCheck struct {
	Name   string  `json:"name"`
	Status string  `json:"status"`
	Reason string  `json:"reason"`
	Value  float64 `json:"value"`
}

// snapshot is one rendered (or JSON-emitted) frame.
type snapshot struct {
	Target         string        `json:"target"`
	Source         string        `json:"source"`
	Cluster        bool          `json:"cluster"`
	At             time.Time     `json:"at"`
	Health         *healthReport `json:"health,omitempty"`
	QPS            float64       `json:"qps"`
	ErrorRate      float64       `json:"error_rate"`
	CacheHitRatio  float64       `json:"cache_hit_ratio"`
	Methods        []methodRow   `json:"methods,omitempty"`
	Nodes          []nodeRow     `json:"nodes,omitempty"`
	Fanout         []counterRow  `json:"fanout,omitempty"`
	FederateFailed int64         `json:"federate_failed_nodes"`
	SlowlogDropped int64         `json:"slowlog_dropped"`
	Goroutines     int64         `json:"goroutines,omitempty"`
	HeapBytes      int64         `json:"heap_bytes,omitempty"`
}

type methodRow struct {
	Method string  `json:"method"`
	Count  int64   `json:"count"`
	Share  float64 `json:"share"`
	QPS    float64 `json:"qps"`
	P50ms  float64 `json:"p50_ms"`
	P95ms  float64 `json:"p95_ms"`
	P99ms  float64 `json:"p99_ms"`
}

type nodeRow struct {
	Node        string  `json:"node"`
	Name        string  `json:"name"`
	Up          bool    `json:"up"`
	Scraped     bool    `json:"scraped"`
	Shards      int64   `json:"shards"`
	StaleShards int64   `json:"stale_shards"`
	Requests    int64   `json:"requests"`
	QPS         float64 `json:"qps"`
	Goroutines  int64   `json:"goroutines,omitempty"`
	HeapBytes   int64   `json:"heap_bytes,omitempty"`
}

type counterRow struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// ---- snapshot extraction helpers ----

func labelVal(labels []obs.PromLabel, name string) string {
	for _, l := range labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// famSum sums every sample of a family passing the filter (nil = all).
func famSum(snap *obs.PromSnapshot, name string, filter func([]obs.PromLabel) bool) (float64, bool) {
	f := snap.Family(name)
	if f == nil {
		return 0, false
	}
	var sum float64
	for _, s := range f.Samples {
		if filter == nil || filter(s.Labels) {
			sum += s.Value
		}
	}
	return sum, true
}

func notErrors(labels []obs.PromLabel) bool { return labelVal(labels, "kind") != "errors" }
func onlyErrors(labels []obs.PromLabel) bool {
	return labelVal(labels, "kind") == "errors"
}

// requests reads total and error request counts from whichever request
// family the target exposes.
func requests(snap *obs.PromSnapshot) (total, errs float64) {
	for _, fam := range []string{"sq_cluster_requests_total", "sq_requests_total"} {
		if t, ok := famSum(snap, fam, notErrors); ok {
			e, _ := famSum(snap, fam, onlyErrors)
			return t, e
		}
	}
	return 0, 0
}

// delta is cur-prev clamped at 0 (counters only move forward; a restart
// reads as a fresh start, not negative traffic).
func delta(cur, prev float64) float64 {
	if d := cur - prev; d > 0 {
		return d
	}
	return 0
}

// cacheRatio prefers the cluster-wide _agg families over per-instance ones.
func cacheCells(snap *obs.PromSnapshot) (hits, misses float64) {
	for _, suffix := range []string{"_agg", ""} {
		if h, ok := famSum(snap, "sq_cache_hits_total"+suffix, nil); ok {
			m, _ := famSum(snap, "sq_cache_misses_total"+suffix, nil)
			return h, m
		}
	}
	return 0, 0
}

// build computes one frame from the current scrape, using prev/elapsed for
// windowed rates and quantiles when available (lifetime otherwise).
func build(sc *scraper, cur, prev *obs.PromSnapshot, elapsed float64) *snapshot {
	cluster := sc.source == "/metrics/cluster"
	snap := &snapshot{
		Target:  sc.target,
		Source:  sc.source,
		Cluster: cluster,
		At:      time.Now(),
		Health:  sc.health(),
	}

	total, errs := requests(cur)
	if prev != nil && elapsed > 0 {
		pt, pe := requests(prev)
		dt, de := delta(total, pt), delta(errs, pe)
		snap.QPS = dt / elapsed
		if dt > 0 {
			snap.ErrorRate = de / dt
		}
	} else if total > 0 {
		snap.ErrorRate = errs / total
	}

	hits, misses := cacheCells(cur)
	if prev != nil {
		ph, pm := cacheCells(prev)
		dh, dm := delta(hits, ph), delta(misses, pm)
		if dh+dm > 0 {
			snap.CacheHitRatio = dh / (dh + dm)
		} else if hits+misses > 0 {
			snap.CacheHitRatio = hits / (hits + misses)
		}
	} else if hits+misses > 0 {
		snap.CacheHitRatio = hits / (hits + misses)
	}

	snap.Methods = methodRows(cur, prev, elapsed, cluster)
	if cluster {
		snap.Nodes = nodeRows(cur, prev, elapsed)
		for _, c := range []struct{ fam, short string }{
			{"sq_cluster_partials_total", "partials"},
			{"sq_cluster_failovers_total", "failovers"},
			{"sq_cluster_hedges_fired_total", "hedges-fired"},
			{"sq_cluster_hedges_won_total", "hedges-won"},
			{"sq_cluster_rereplicated_total", "rereplicated"},
			{"sq_cluster_stale_rejected_total", "stale-rejected"},
			{"sq_cluster_rollbacks_total", "rollbacks"},
		} {
			if v, ok := famSum(cur, c.fam, nil); ok {
				snap.Fanout = append(snap.Fanout, counterRow{Name: c.short, Value: int64(v)})
			}
		}
		if v, ok := famSum(cur, "sq_federate_failed_nodes", nil); ok {
			snap.FederateFailed = int64(v)
		}
	} else {
		if v, ok := famSum(cur, "go_goroutines", nil); ok {
			snap.Goroutines = int64(v)
		}
		if v, ok := famSum(cur, "go_heap_bytes", nil); ok {
			snap.HeapBytes = int64(v)
		}
	}
	if v, ok := famSum(cur, "sq_slowlog_dropped_total", nil); ok {
		snap.SlowlogDropped = int64(v)
	}
	return snap
}

// methodRows builds the per-method latency and routing-win table from
// sq_query_duration_seconds cells. On a routed flat server the method
// label is the method that won each query, so count share doubles as the
// routing win rate. Against a federated scrape only the coordinator's own
// cells are read — client-visible latency, not per-leg node latency.
func methodRows(cur, prev *obs.PromSnapshot, elapsed float64, cluster bool) []methodRow {
	f := cur.Family("sq_query_duration_seconds")
	if f == nil {
		return nil
	}
	keep := func(h *obs.PromHistogram) bool {
		return !cluster || labelVal(h.Labels, "node") == "coordinator"
	}
	var prevCells map[string]*obs.PromHistogram
	if prev != nil {
		prevCells = make(map[string]*obs.PromHistogram)
		if pf := prev.Family("sq_query_duration_seconds"); pf != nil {
			for _, h := range pf.Hists {
				prevCells[histKey(h)] = h
			}
		}
	}
	var rows []methodRow
	var totalCount int64
	for _, h := range f.Hists {
		if !keep(h) {
			continue
		}
		row := methodRow{Method: labelVal(h.Labels, "method"), Count: h.Count}
		totalCount += h.Count
		bounds, cum, count := h.Bounds, h.Cum, h.Count
		if ph := prevCells[histKey(h)]; ph != nil && len(ph.Cum) == len(h.Cum) {
			dc := make([]int64, len(h.Cum))
			for i := range dc {
				dc[i] = h.Cum[i] - ph.Cum[i]
			}
			if dcount := h.Count - ph.Count; dcount > 0 {
				cum, count = dc, dcount
				if elapsed > 0 {
					row.QPS = float64(dcount) / elapsed
				}
			}
		}
		row.P50ms = obs.QuantileFromCells(bounds, cum, count, 0.50) * 1e3
		row.P95ms = obs.QuantileFromCells(bounds, cum, count, 0.95) * 1e3
		row.P99ms = obs.QuantileFromCells(bounds, cum, count, 0.99) * 1e3
		rows = append(rows, row)
	}
	for i := range rows {
		if totalCount > 0 {
			rows[i].Share = float64(rows[i].Count) / float64(totalCount)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })
	return rows
}

func histKey(h *obs.PromHistogram) string {
	parts := make([]string, len(h.Labels))
	for i, l := range h.Labels {
		parts[i] = l.Name + "=" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// nodeRows joins the coordinator's membership gauges with each node's own
// federated series (requests, runtime pressure) by the node label.
func nodeRows(cur, prev *obs.PromSnapshot, elapsed float64) []nodeRow {
	up := cur.Family("sq_cluster_node_up")
	if up == nil {
		return nil
	}
	byNode := func(snap *obs.PromSnapshot, fam, node string, filter func([]obs.PromLabel) bool) float64 {
		v, _ := famSum(snap, fam, func(labels []obs.PromLabel) bool {
			return labelVal(labels, "node") == node && (filter == nil || filter(labels))
		})
		return v
	}
	var rows []nodeRow
	for _, s := range up.Samples {
		addr := labelVal(s.Labels, "node")
		row := nodeRow{
			Node:        addr,
			Name:        labelVal(s.Labels, "name"),
			Up:          s.Value > 0,
			Scraped:     byNode(cur, "sq_federate_node_up", addr, nil) > 0,
			Shards:      int64(byNode(cur, "sq_cluster_node_shards", addr, nil)),
			StaleShards: int64(byNode(cur, "sq_cluster_node_stale_shards", addr, nil)),
			Requests:    int64(byNode(cur, "sq_node_requests_total", addr, notErrors)),
			Goroutines:  int64(byNode(cur, "go_goroutines", addr, nil)),
			HeapBytes:   int64(byNode(cur, "go_heap_bytes", addr, nil)),
		}
		if prev != nil && elapsed > 0 {
			row.QPS = delta(float64(row.Requests), byNode(prev, "sq_node_requests_total", addr, notErrors)) / elapsed
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// ---- rendering ----

const (
	ansiReset  = "\x1b[0m"
	ansiBold   = "\x1b[1m"
	ansiDim    = "\x1b[2m"
	ansiGreen  = "\x1b[32m"
	ansiYellow = "\x1b[33m"
	ansiRed    = "\x1b[31m"
)

func statusColor(status string) string {
	switch status {
	case "ok":
		return ansiGreen
	case "degraded":
		return ansiYellow
	case "critical":
		return ansiRed
	}
	return ansiDim
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func render(s *snapshot, ansi bool) string {
	color := func(c, text string) string {
		if !ansi {
			return text
		}
		return c + text + ansiReset
	}
	var b strings.Builder
	if ansi {
		b.WriteString("\x1b[H\x1b[2J")
	}
	health := "health n/a"
	if s.Health != nil {
		health = "health " + color(statusColor(s.Health.Status)+ansiBold, strings.ToUpper(s.Health.Status))
	}
	fmt.Fprintf(&b, "%s — %s (%s)  %s\n", color(ansiBold, "sqtop"), s.Target, s.Source, s.At.Format("15:04:05"))
	fmt.Fprintf(&b, "%s   qps %.1f   errors %.1f%%   cache hit %.0f%%", health, s.QPS, s.ErrorRate*100, s.CacheHitRatio*100)
	if s.Cluster {
		fmt.Fprintf(&b, "   scrape failures %d", s.FederateFailed)
	} else if s.Goroutines > 0 {
		fmt.Fprintf(&b, "   goroutines %d   heap %s", s.Goroutines, humanBytes(s.HeapBytes))
	}
	if s.SlowlogDropped > 0 {
		fmt.Fprintf(&b, "   slowlog dropped %d", s.SlowlogDropped)
	}
	b.WriteString("\n")
	if s.Health != nil {
		for _, c := range s.Health.Checks {
			if c.Status != "ok" {
				fmt.Fprintf(&b, "  %s %s: %s\n", color(statusColor(c.Status), strings.ToUpper(c.Status)), c.Name, c.Reason)
			}
		}
	}
	if len(s.Methods) > 0 {
		fmt.Fprintf(&b, "\n%s\n", color(ansiBold, fmt.Sprintf("%-16s %10s %6s %8s %9s %9s %9s", "METHOD", "COUNT", "WIN%", "QPS", "P50", "P95", "P99")))
		for _, m := range s.Methods {
			fmt.Fprintf(&b, "%-16s %10d %5.1f%% %8.1f %7.2fms %7.2fms %7.2fms\n",
				m.Method, m.Count, m.Share*100, m.QPS, m.P50ms, m.P95ms, m.P99ms)
		}
	}
	if len(s.Nodes) > 0 {
		fmt.Fprintf(&b, "\n%s\n", color(ansiBold, fmt.Sprintf("%-28s %-6s %-6s %6s %6s %10s %8s %7s %8s", "NODE", "NAME", "STATE", "SHARDS", "STALE", "REQS", "QPS", "GOROUT", "HEAP")))
		for _, n := range s.Nodes {
			state := color(ansiGreen, "up")
			switch {
			case !n.Up:
				state = color(ansiRed, "down")
			case n.StaleShards > 0:
				state = color(ansiYellow, "stale")
			case !n.Scraped:
				state = color(ansiYellow, "noscr")
			}
			fmt.Fprintf(&b, "%-28s %-6s %-6s %6d %6d %10d %8.1f %7d %8s\n",
				n.Node, n.Name, state, n.Shards, n.StaleShards, n.Requests, n.QPS, n.Goroutines, humanBytes(n.HeapBytes))
		}
	}
	if len(s.Fanout) > 0 {
		b.WriteString("\nfan-out:")
		for _, c := range s.Fanout {
			fmt.Fprintf(&b, "  %s %d", c.Name, c.Value)
		}
		b.WriteString("\n")
	}
	return b.String()
}
