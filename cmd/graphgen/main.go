// Command graphgen generates graph datasets in GFD text form: synthetic
// datasets following the paper's GraphGen procedure, or simulations of the
// four real datasets (AIDS, PDBS, PCM, PPI) matched to Table 1.
//
// Usage:
//
//	graphgen -graphs 1000 -nodes 200 -density 0.025 -labels 20 -o data.gfd
//	graphgen -preset PCM -graphdiv 4 -nodediv 4 -o pcm.gfd
//	graphgen -preset AIDS -queries 20 -qsize 8 -qo queries.gfd
//
// With -index, the generated dataset is additionally indexed with the given
// engine method spec and the built index persisted next to the data, ready
// for gquery -ix:
//
//	graphgen -preset AIDS -o aids.gfd -index grapes:workers=8 -ixo aids.idx
//
// Adding -shards N builds N per-shard indexes in parallel over a
// hash-partitioned copy of the dataset and persists them as independent
// files under -ixo (a manifest at the path itself plus one .shard-i file
// per shard), ready for gquery -ix ... -shards N:
//
//	graphgen -preset AIDS -o aids.gfd -index ggsx -shards 4 -ixo aids.idx
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	var (
		preset   = flag.String("preset", "", "real dataset preset: AIDS, PDBS, PCM, PPI (empty = synthetic)")
		graphDiv = flag.Float64("graphdiv", 1, "preset: divide the graph count by this factor")
		nodeDiv  = flag.Float64("nodediv", 1, "preset: divide node counts by this factor (degree preserved)")
		graphs   = flag.Int("graphs", 1000, "synthetic: number of graphs")
		nodes    = flag.Int("nodes", 200, "synthetic: mean nodes per graph")
		density  = flag.Float64("density", 0.025, "synthetic: mean graph density")
		labels   = flag.Int("labels", 20, "synthetic: number of distinct labels")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "dataset output file (default stdout)")
		queries  = flag.Int("queries", 0, "also generate this many random-walk queries")
		qsize    = flag.Int("qsize", 8, "query size in edges")
		qout     = flag.String("qo", "", "query output file (required with -queries)")
		index    = flag.String("index", "", "also build an index with this method spec (e.g. grapes:workers=8)")
		ixout    = flag.String("ixo", "", "index output file (required with -index)")
		shards   = flag.Int("shards", 0, "build the index as N parallel shards persisted as independent files (0/1 = unsharded)")
	)
	flag.Parse()

	if err := run(*preset, *graphDiv, *nodeDiv, *graphs, *nodes, *density, *labels,
		*seed, *out, *queries, *qsize, *qout, *index, *ixout, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(preset string, graphDiv, nodeDiv float64, graphs, nodes int, density float64,
	labels int, seed int64, out string, queries, qsize int, qout, index, ixout string, shards int) error {
	if shards > 1 && index == "" {
		return fmt.Errorf("-shards requires -index")
	}
	if index != "" {
		if ixout == "" {
			return fmt.Errorf("-index requires -ixo")
		}
		if out == "" {
			return fmt.Errorf("-index requires -o (the index must pair with a dataset file)")
		}
		// Fail on a bad method spec before spending time generating.
		if _, err := engine.New(index); err != nil {
			return err
		}
	}
	var ds *graph.Dataset
	switch preset {
	case "":
		ds = gen.Synthetic(gen.SynthConfig{
			NumGraphs: graphs, MeanNodes: nodes, MeanDensity: density,
			NumLabels: labels, Seed: seed,
		})
	case "AIDS", "PDBS", "PCM", "PPI":
		cfg := map[string]gen.RealConfig{
			"AIDS": gen.AIDS, "PDBS": gen.PDBS, "PCM": gen.PCM, "PPI": gen.PPI,
		}[preset].Scaled(graphDiv, nodeDiv)
		cfg.Seed = seed
		ds = gen.Realistic(cfg)
	default:
		return fmt.Errorf("unknown preset %q", preset)
	}

	if err := writeDataset(out, ds); err != nil {
		return err
	}
	st := ds.ComputeStats()
	fmt.Fprintf(os.Stderr, "generated %q: %d graphs, avg %.1f nodes / %.1f edges, density %.4f, %d labels\n",
		ds.Name, st.NumGraphs, st.AvgNodes, st.AvgEdges, st.AvgDensity, st.NumLabels)

	if queries > 0 {
		if qout == "" {
			return fmt.Errorf("-queries requires -qo")
		}
		qs, err := workload.Generate(ds, workload.Config{NumQueries: queries, QueryEdges: qsize, Seed: seed + 1})
		if err != nil {
			return err
		}
		qds := graph.NewDataset("queries")
		qds.Dict = ds.Dict
		for _, q := range qs {
			qds.Add(q)
		}
		if err := graph.SaveDatasetFile(qout, qds); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "generated %d %d-edge queries to %s\n", queries, qsize, qout)
	}

	if index != "" {
		// Build over the dataset as reloaded from the file, not the
		// in-memory original: loading interns labels in file order, and the
		// persisted index must agree with what gquery -ix will load. Always
		// build fresh and save explicitly — WithIndexPath would restore a
		// stale index left at ixout by a previous run.
		reloaded, err := graph.LoadDatasetFile(out)
		if err != nil {
			return err
		}
		t0 := time.Now()
		if shards > 1 {
			s, err := engine.OpenSharded(context.Background(), reloaded, shards, engine.WithSpec(index))
			if err != nil {
				return err
			}
			if err := s.Save(ixout); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "indexed with %s across %d shards in %v (%.2f MB) to %s{,.shard-*}\n",
				s.Name(), shards, time.Since(t0).Round(time.Millisecond),
				float64(s.SizeBytes())/(1<<20), ixout)
			return nil
		}
		eng, err := engine.Open(context.Background(), reloaded, engine.WithSpec(index))
		if err != nil {
			return err
		}
		if err := eng.Save(ixout); err != nil {
			return err
		}
		m := eng.Method()
		fmt.Fprintf(os.Stderr, "indexed with %s in %v (%.2f MB) to %s\n",
			m.Name(), time.Since(t0).Round(time.Millisecond),
			float64(m.SizeBytes())/(1<<20), ixout)
	}
	return nil
}

func writeDataset(path string, ds *graph.Dataset) error {
	if path == "" {
		return graph.WriteDataset(os.Stdout, ds)
	}
	return graph.SaveDatasetFile(path, ds)
}
