// Command graphgen generates graph datasets in GFD text form: synthetic
// datasets following the paper's GraphGen procedure, or simulations of the
// four real datasets (AIDS, PDBS, PCM, PPI) matched to Table 1.
//
// Usage:
//
//	graphgen -graphs 1000 -nodes 200 -density 0.025 -labels 20 -o data.gfd
//	graphgen -preset PCM -graphdiv 4 -nodediv 4 -o pcm.gfd
//	graphgen -preset AIDS -queries 20 -qsize 8 -qo queries.gfd
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	var (
		preset   = flag.String("preset", "", "real dataset preset: AIDS, PDBS, PCM, PPI (empty = synthetic)")
		graphDiv = flag.Float64("graphdiv", 1, "preset: divide the graph count by this factor")
		nodeDiv  = flag.Float64("nodediv", 1, "preset: divide node counts by this factor (degree preserved)")
		graphs   = flag.Int("graphs", 1000, "synthetic: number of graphs")
		nodes    = flag.Int("nodes", 200, "synthetic: mean nodes per graph")
		density  = flag.Float64("density", 0.025, "synthetic: mean graph density")
		labels   = flag.Int("labels", 20, "synthetic: number of distinct labels")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "dataset output file (default stdout)")
		queries  = flag.Int("queries", 0, "also generate this many random-walk queries")
		qsize    = flag.Int("qsize", 8, "query size in edges")
		qout     = flag.String("qo", "", "query output file (required with -queries)")
	)
	flag.Parse()

	if err := run(*preset, *graphDiv, *nodeDiv, *graphs, *nodes, *density, *labels,
		*seed, *out, *queries, *qsize, *qout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(preset string, graphDiv, nodeDiv float64, graphs, nodes int, density float64,
	labels int, seed int64, out string, queries, qsize int, qout string) error {
	var ds *graph.Dataset
	switch preset {
	case "":
		ds = gen.Synthetic(gen.SynthConfig{
			NumGraphs: graphs, MeanNodes: nodes, MeanDensity: density,
			NumLabels: labels, Seed: seed,
		})
	case "AIDS", "PDBS", "PCM", "PPI":
		cfg := map[string]gen.RealConfig{
			"AIDS": gen.AIDS, "PDBS": gen.PDBS, "PCM": gen.PCM, "PPI": gen.PPI,
		}[preset].Scaled(graphDiv, nodeDiv)
		cfg.Seed = seed
		ds = gen.Realistic(cfg)
	default:
		return fmt.Errorf("unknown preset %q", preset)
	}

	if err := writeDataset(out, ds); err != nil {
		return err
	}
	st := ds.ComputeStats()
	fmt.Fprintf(os.Stderr, "generated %q: %d graphs, avg %.1f nodes / %.1f edges, density %.4f, %d labels\n",
		ds.Name, st.NumGraphs, st.AvgNodes, st.AvgEdges, st.AvgDensity, st.NumLabels)

	if queries > 0 {
		if qout == "" {
			return fmt.Errorf("-queries requires -qo")
		}
		qs, err := workload.Generate(ds, workload.Config{NumQueries: queries, QueryEdges: qsize, Seed: seed + 1})
		if err != nil {
			return err
		}
		qds := graph.NewDataset("queries")
		qds.Dict = ds.Dict
		for _, q := range qs {
			qds.Add(q)
		}
		if err := graph.SaveDatasetFile(qout, qds); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "generated %d %d-edge queries to %s\n", queries, qsize, qout)
	}
	return nil
}

func writeDataset(path string, ds *graph.Dataset) error {
	if path == "" {
		return graph.WriteDataset(os.Stdout, ds)
	}
	return graph.SaveDatasetFile(path, ds)
}
