// Command gquery indexes a GFD dataset with one of the six methods and
// processes subgraph queries against it, reporting per-query candidates,
// answers, timings, and the workload false positive ratio.
//
// Usage:
//
//	gquery -data molecules.gfd -queries q.gfd -method Grapes
//	gquery -data molecules.gfd -queries q.gfd -method gIndex -v
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "GFD dataset file (required)")
		queryPath = flag.String("queries", "", "GFD query file (required)")
		methodStr = flag.String("method", "Grapes", "method: Grapes, GGSX, CTindex, gIndex, tree+delta, gCode")
		timeout   = flag.Duration("timeout", 8*time.Hour, "per-stage time budget")
		verbose   = flag.Bool("v", false, "per-query output")
	)
	flag.Parse()

	if err := run(*dataPath, *queryPath, *methodStr, *timeout, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "gquery:", err)
		os.Exit(1)
	}
}

func run(dataPath, queryPath, methodStr string, timeout time.Duration, verbose bool) error {
	if dataPath == "" || queryPath == "" {
		return fmt.Errorf("-data and -queries are required")
	}
	ds, err := graph.LoadDatasetFile(dataPath)
	if err != nil {
		return fmt.Errorf("loading dataset: %w", err)
	}
	qds, err := graph.LoadDatasetFile(queryPath)
	if err != nil {
		return fmt.Errorf("loading queries: %w", err)
	}
	m, err := bench.NewMethod(bench.MethodID(methodStr), bench.MethodLimits{})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	st, err := core.BuildTimed(ctx, m, ds)
	if err != nil {
		return fmt.Errorf("indexing: %w", err)
	}
	fmt.Printf("indexed %d graphs with %s in %v (index size %.2f MB)\n",
		ds.Len(), m.Name(), st.Elapsed.Round(time.Millisecond), float64(st.SizeBytes)/(1<<20))

	proc := core.NewProcessor(m, ds)
	var cands, answers []graph.IDSet
	var totalTime time.Duration
	for i, q := range qds.Graphs {
		res, err := proc.QueryCtx(ctx, q)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		cands = append(cands, res.Candidates)
		answers = append(answers, res.Answers)
		totalTime += res.TotalTime()
		if verbose {
			fmt.Printf("query %3d (%d edges): %4d candidates, %4d answers, %v (filter %v, verify %v)\n",
				i, q.NumEdges(), len(res.Candidates), len(res.Answers),
				res.TotalTime().Round(time.Microsecond),
				res.FilterTime.Round(time.Microsecond), res.VerifyTime.Round(time.Microsecond))
		}
	}
	n := len(qds.Graphs)
	if n == 0 {
		return fmt.Errorf("no queries in %s", queryPath)
	}
	fmt.Printf("%d queries: avg time %v, false positive ratio %.4f\n",
		n, (totalTime / time.Duration(n)).Round(time.Microsecond),
		workload.FalsePositiveRatio(cands, answers))
	return nil
}
