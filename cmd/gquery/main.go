// Command gquery indexes a GFD dataset with one of the six methods and
// processes subgraph queries against it, reporting per-query candidates,
// answers, timings, and the workload false positive ratio.
//
// Methods are selected by engine spec: a registered name or alias,
// optionally with typed parameter overrides.
//
// Usage:
//
//	gquery -data molecules.gfd -queries q.gfd -method Grapes
//	gquery -data molecules.gfd -queries q.gfd -method grapes:maxPathLen=3,workers=8 -v
//	gquery -data molecules.gfd -queries q.gfd -method gIndex -ix gindex.idx
//	gquery -data molecules.gfd -queries q.gfd -method grapes -shards 4 -ix mol.idx
//	gquery -data molecules.gfd -queries q.gfd -method router:methods=grapes+ggsx+gcode -v
//	gquery -list
//
// With -method router:..., several method indexes are co-built and every
// query is routed to the method predicted cheapest for its features; -v
// shows which method served each query and a final routing summary.
//
// With -shards N (N > 1), the dataset is hash-partitioned into N shards,
// one index per shard is built in parallel (or restored from -ix's
// per-shard files), and every query fans out across the shards with its
// results merged.
//
// With -remote URL, gquery is a thin client instead: no dataset is loaded
// and no index is built — each query is POSTed to a running sqserve
// instance and the server's answers, timings, and cache hits are reported:
//
//	gquery -remote http://localhost:7474 -queries q.gfd -v
//
// With -trace, each query's span tree is printed after its result line:
// locally the engine's own stage spans (route, candidate-chunk,
// tombstone-filter, verify); against -remote the server's echoed tree,
// which on a cluster coordinator includes every node's grafted subtree.
//
// With -add and/or -remove, gquery mutates the dataset before querying:
// -remove tombstones graphs by id, -add appends every graph of a GFD file
// (removals apply first). Locally the engine maintains its index online —
// incrementally for methods that support it; against -remote the same
// mutations go through the server's POST /graphs and DELETE /graphs/{id}
// endpoints. -queries may be omitted when only mutating:
//
//	gquery -data molecules.gfd -queries q.gfd -method grapes -add new.gfd -remove 3,17
//	gquery -remote http://localhost:7474 -add new.gfd -remove 3 -v
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "GFD dataset file (required)")
		queryPath = flag.String("queries", "", "GFD query file (required)")
		methodStr = flag.String("method", "Grapes", "method spec: name[:key=value,...]; see -list")
		indexPath = flag.String("ix", "", "persist/restore the built index at this path")
		workers   = flag.Int("workers", 0, "per-query verification parallelism (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "hash-partition the dataset into N shards with parallel build and query fan-out (0/1 = unsharded)")
		remote    = flag.String("remote", "", "query a running sqserve at this base URL instead of building a local index")
		addPath   = flag.String("add", "", "add every graph of this GFD file to the dataset before querying (online index maintenance)")
		removeIDs = flag.String("remove", "", "comma-separated graph ids to tombstone before querying (applied before -add)")
		timeout   = flag.Duration("timeout", 8*time.Hour, "per-stage time budget")
		trace     = flag.Bool("trace", false, "print each query's span tree (remote: the server-echoed tree, cluster node subtrees included)")
		verbose   = flag.Bool("v", false, "per-query output")
		list      = flag.Bool("list", false, "list registered methods and their parameters")
	)
	flag.Parse()

	if *list {
		engine.FprintMethods(os.Stdout)
		return
	}
	removals, err := parseRemovals(*removeIDs)
	if err == nil {
		if *remote != "" {
			// The engine flags belong to the server in client mode; silently
			// ignoring them would let users attribute the server's numbers to
			// a method it is not running.
			if conflict := localOnlyFlags(); len(conflict) > 0 {
				err = fmt.Errorf("-remote is a client mode and cannot take %s: the method, shards, and index are chosen by the sqserve instance",
					strings.Join(conflict, ", "))
			} else {
				err = runRemote(*remote, *queryPath, *addPath, removals, *timeout, *verbose, *trace)
			}
		} else {
			err = run(*dataPath, *queryPath, *methodStr, *indexPath, *addPath, removals, *workers, *shards, *timeout, *verbose, *trace)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gquery:", err)
		os.Exit(1)
	}
}

// parseRemovals parses the -remove id list.
func parseRemovals(s string) ([]graph.ID, error) {
	if s == "" {
		return nil, nil
	}
	var out []graph.ID
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("-remove: bad graph id %q", part)
		}
		out = append(out, graph.ID(id))
	}
	return out, nil
}

// localOnlyFlags returns the explicitly set flags that only apply when
// building a local engine.
func localOnlyFlags() []string {
	local := map[string]bool{"data": true, "method": true, "ix": true, "workers": true, "shards": true}
	var set []string
	flag.Visit(func(f *flag.Flag) {
		if local[f.Name] {
			set = append(set, "-"+f.Name)
		}
	})
	return set
}

// runRemote drives the query workload against a running sqserve instance:
// each query is serialized with its own label strings (the server resolves
// them against the dataset dictionary) and the server's answers, timings,
// and cache hits are aggregated client-side.
func runRemote(baseURL, queryPath, addPath string, removals []graph.ID, timeout time.Duration, verbose, trace bool) error {
	// Transient server pushback — 429 from admission control, 503 while
	// draining or a cluster shard is momentarily ownerless, a refused
	// connection during a restart — retries with capped backoff and jitter
	// instead of failing the workload.
	client := &server.RetryClient{Client: &http.Client{Timeout: timeout}}
	if verbose {
		client.OnRetry = func(attempt int, cause error, wait time.Duration) {
			fmt.Printf("retrying after %v (attempt %d failed: %v)\n", wait.Round(time.Millisecond), attempt, cause)
		}
	}
	if len(removals) > 0 || addPath != "" {
		if err := mutateRemote(client, baseURL, addPath, removals, verbose); err != nil {
			return err
		}
		if queryPath == "" {
			return nil // mutation-only invocation
		}
	}
	if queryPath == "" {
		return fmt.Errorf("-queries is required")
	}
	qds, err := graph.LoadDatasetFile(queryPath)
	if err != nil {
		return fmt.Errorf("loading queries: %w", err)
	}
	if qds.Len() == 0 {
		return fmt.Errorf("no queries in %s", queryPath)
	}
	var serverTime, rttTime time.Duration
	var fpSum float64
	hits, partials := 0, 0
	for i, q := range qds.Graphs {
		body, err := json.Marshal(server.GraphToJSON(q, &qds.Dict))
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, baseURL+"/query", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if trace {
			// Asking the server to trace: the response echoes the span tree
			// under this id (on a coordinator, node subtrees grafted in).
			req.Header.Set(obs.TraceHeader, obs.NewTrace().ID())
		}
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		var qr server.QueryResponse
		if resp.StatusCode != http.StatusOK {
			var e server.ErrorResponse
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if json.Unmarshal(msg, &e) == nil && e.Error != "" {
				return fmt.Errorf("query %d: server: %s (%s)", i, e.Error, resp.Status)
			}
			return fmt.Errorf("query %d: server: %s", i, resp.Status)
		}
		err = json.NewDecoder(resp.Body).Decode(&qr)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("query %d: decoding response: %w", i, err)
		}
		rtt := time.Since(t0)
		serverTime += time.Duration(qr.TotalUs) * time.Microsecond
		rttTime += rtt
		if qr.Cached {
			hits++
		}
		if len(qr.Candidates) > 0 {
			fpSum += float64(len(qr.Candidates)-len(qr.Answers)) / float64(len(qr.Candidates))
		}
		if qr.Partial {
			partials++
			fmt.Printf("warning: query %d answered partially (shards %v unreachable)\n", i, qr.FailedShards)
		}
		if verbose {
			cached := ""
			if qr.Cached {
				cached = " (cached)"
			}
			via := ""
			if qr.Method != "" {
				via = " via " + qr.Method
			}
			fmt.Printf("query %3d (%d edges): %4d candidates, %4d answers, server %v, rtt %v%s%s\n",
				i, q.NumEdges(), len(qr.Candidates), len(qr.Answers),
				(time.Duration(qr.TotalUs) * time.Microsecond).Round(time.Microsecond),
				rtt.Round(time.Microsecond), via, cached)
		}
		if trace {
			if qr.Trace != nil {
				qr.Trace.Fprint(os.Stdout)
			} else {
				fmt.Printf("query %3d: server echoed no trace\n", i)
			}
		}
	}
	n := len(qds.Graphs)
	fmt.Printf("%d queries via %s: avg server time %v, avg rtt %v, %d cache hits, false positive ratio %.4f\n",
		n, baseURL, (serverTime / time.Duration(n)).Round(time.Microsecond),
		(rttTime / time.Duration(n)).Round(time.Microsecond), hits, fpSum/float64(n))
	if partials > 0 {
		fmt.Printf("warning: %d of %d answers were partial — a degraded cluster served them\n", partials, n)
	}
	return nil
}

// mutateRemote drives the server's mutation endpoints: DELETE per removal,
// then POST per graph of the add file.
func mutateRemote(client *server.RetryClient, baseURL, addPath string, removals []graph.ID, verbose bool) error {
	do := func(req *http.Request) (server.MutationResponse, error) {
		var mr server.MutationResponse
		resp, err := client.Do(req)
		if err != nil {
			return mr, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e server.ErrorResponse
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			if json.Unmarshal(msg, &e) == nil && e.Error != "" {
				return mr, fmt.Errorf("server: %s (%s)", e.Error, resp.Status)
			}
			return mr, fmt.Errorf("server: %s", resp.Status)
		}
		return mr, json.NewDecoder(resp.Body).Decode(&mr)
	}
	for _, id := range removals {
		req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/graphs/%d", baseURL, id), nil)
		if err != nil {
			return err
		}
		mr, err := do(req)
		if err != nil {
			return fmt.Errorf("removing graph %d: %w", id, err)
		}
		if verbose {
			fmt.Printf("removed graph %d (epoch %d, %d live graphs)\n", id, mr.Epoch, mr.Graphs)
		}
	}
	if addPath == "" {
		return nil
	}
	ads, err := graph.LoadDatasetFile(addPath)
	if err != nil {
		return fmt.Errorf("loading -add graphs: %w", err)
	}
	for i, g := range ads.Graphs {
		body, err := json.Marshal(server.GraphToJSON(g, &ads.Dict))
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, baseURL+"/graphs", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		mr, err := do(req)
		if err != nil {
			return fmt.Errorf("adding graph %d of %s: %w", i, addPath, err)
		}
		if verbose {
			fmt.Printf("added graph as id %d (epoch %d, %d live graphs)\n", mr.ID, mr.Epoch, mr.Graphs)
		}
	}
	return nil
}

// mutateLocal applies the -remove/-add mutations to an opened engine
// through its Mutable capability, maintaining the index online.
func mutateLocal(ctx context.Context, q engine.Querier, ds *graph.Dataset, addPath string, removals []graph.ID, verbose bool) error {
	mut, ok := q.(engine.Mutable)
	if !ok {
		return fmt.Errorf("engine does not support -add/-remove")
	}
	for _, id := range removals {
		if err := mut.RemoveGraph(ctx, id); err != nil {
			return err
		}
		if verbose {
			fmt.Printf("removed graph %d (epoch %d, %d live graphs)\n", id, mut.Epoch(), ds.NumAlive())
		}
	}
	if addPath == "" {
		return nil
	}
	// Added graphs intern their labels into the dataset's dictionary, so a
	// new label grows the shared label universe.
	ads, err := graph.LoadDatasetFileWithDict(addPath, &ds.Dict)
	if err != nil {
		return fmt.Errorf("loading -add graphs: %w", err)
	}
	for _, g := range ads.Graphs {
		id, err := mut.AddGraph(ctx, g.ShallowWithID(0))
		if err != nil {
			return err
		}
		if verbose {
			fmt.Printf("added graph as id %d (epoch %d, %d live graphs)\n", id, mut.Epoch(), ds.NumAlive())
		}
	}
	return nil
}

func run(dataPath, queryPath, methodStr, indexPath, addPath string, removals []graph.ID, workers, shards int, timeout time.Duration, verbose, trace bool) error {
	mutating := addPath != "" || len(removals) > 0
	if dataPath == "" || (queryPath == "" && !mutating) {
		return fmt.Errorf("-data and -queries are required")
	}
	ds, err := graph.LoadDatasetFile(dataPath)
	if err != nil {
		return fmt.Errorf("loading dataset: %w", err)
	}
	// Queries share the dataset's label dictionary so label IDs agree
	// across the two files.
	var qds *graph.Dataset
	if queryPath != "" {
		if qds, err = graph.LoadDatasetFileWithDict(queryPath, &ds.Dict); err != nil {
			return fmt.Errorf("loading queries: %w", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	opts := []engine.Option{engine.WithSpec(methodStr)}
	if indexPath != "" {
		opts = append(opts, engine.WithIndexPath(indexPath))
	}
	if workers > 0 {
		opts = append(opts, engine.WithVerifyWorkers(workers))
	}
	q, err := engine.OpenAny(ctx, ds, shards, opts...)
	if err != nil {
		return err
	}
	switch e := q.(type) {
	case *engine.Sharded:
		st := e.BuildStats()
		if e.Restored() {
			fmt.Printf("restored %s index for %d graphs from %d shards under %s (%.2f MB)\n",
				e.Name(), ds.Len(), shards, indexPath, float64(e.SizeBytes())/(1<<20))
		} else {
			fmt.Printf("indexed %d graphs with %s across %d shards in %v (%d restored, total size %.2f MB)\n",
				ds.Len(), e.Name(), shards, st.Elapsed.Round(time.Millisecond),
				e.RestoredShards(), float64(e.SizeBytes())/(1<<20))
		}
	case *engine.Engine:
		m := e.Method()
		if e.Restored() {
			fmt.Printf("restored %s index for %d graphs from %s (%.2f MB)\n",
				m.Name(), ds.Len(), indexPath, float64(m.SizeBytes())/(1<<20))
		} else {
			st := e.BuildStats()
			fmt.Printf("indexed %d graphs with %s in %v (index size %.2f MB)\n",
				ds.Len(), m.Name(), st.Elapsed.Round(time.Millisecond), float64(st.SizeBytes)/(1<<20))
		}
	case *router.Multi:
		st := e.BuildStats()
		if e.RestoredMethods() == len(e.Methods()) {
			fmt.Printf("restored router indexes over %s (%s policy) for %d graphs from %s (total size %.2f MB)\n",
				strings.Join(e.Methods(), "+"), e.Policy(), ds.Len(), indexPath,
				float64(st.SizeBytes)/(1<<20))
		} else {
			fmt.Printf("indexed %d graphs with router over %s (%s policy) in %v (%d restored, total size %.2f MB)\n",
				ds.Len(), strings.Join(e.Methods(), "+"), e.Policy(),
				st.Elapsed.Round(time.Millisecond), e.RestoredMethods(), float64(st.SizeBytes)/(1<<20))
		}
	}

	if mutating {
		if err := mutateLocal(ctx, q, ds, addPath, removals, verbose); err != nil {
			return err
		}
		if qds == nil {
			return nil // mutation-only invocation
		}
	}

	var cands, answers []graph.IDSet
	var totalTime time.Duration
	for i, qg := range qds.Graphs {
		qctx := ctx
		var tr *obs.Trace
		var root *obs.Span
		if trace {
			tr = obs.NewTrace()
			root = tr.StartSpan(nil, "query")
			qctx = obs.ContextWithSpan(ctx, root)
		}
		res, err := q.Query(qctx, qg)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		root.End()
		cands = append(cands, res.Candidates)
		answers = append(answers, res.Answers)
		totalTime += res.TotalTime()
		if verbose {
			fmt.Printf("query %3d (%d edges): %4d candidates, %4d answers, %v (filter %v, verify %v) via %s\n",
				i, qg.NumEdges(), len(res.Candidates), len(res.Answers),
				res.TotalTime().Round(time.Microsecond),
				res.FilterTime.Round(time.Microsecond), res.VerifyTime.Round(time.Microsecond),
				res.Method)
		}
		if trace {
			tr.Tree().Fprint(os.Stdout)
		}
	}
	n := len(qds.Graphs)
	if n == 0 {
		return fmt.Errorf("no queries in %s", queryPath)
	}
	fmt.Printf("%d queries: avg time %v, false positive ratio %.4f\n",
		n, (totalTime / time.Duration(n)).Round(time.Microsecond),
		workload.FalsePositiveRatio(cands, answers))
	if m, ok := q.(*router.Multi); ok {
		snap := m.Stats()
		fmt.Printf("routing (%s):", snap.Policy)
		for _, ms := range snap.Methods {
			fmt.Printf(" %s %.0f%%", ms.Method, 100*ms.WinRate)
		}
		fmt.Printf(" (raced %d, explored %d)\n", snap.Raced, snap.Explored)
	}
	return nil
}
