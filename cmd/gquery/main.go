// Command gquery indexes a GFD dataset with one of the six methods and
// processes subgraph queries against it, reporting per-query candidates,
// answers, timings, and the workload false positive ratio.
//
// Methods are selected by engine spec: a registered name or alias,
// optionally with typed parameter overrides.
//
// Usage:
//
//	gquery -data molecules.gfd -queries q.gfd -method Grapes
//	gquery -data molecules.gfd -queries q.gfd -method grapes:maxPathLen=3,workers=8 -v
//	gquery -data molecules.gfd -queries q.gfd -method gIndex -ix gindex.idx
//	gquery -data molecules.gfd -queries q.gfd -method grapes -shards 4 -ix mol.idx
//	gquery -list
//
// With -shards N (N > 1), the dataset is hash-partitioned into N shards,
// one index per shard is built in parallel (or restored from -ix's
// per-shard files), and every query fans out across the shards with its
// results merged.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "GFD dataset file (required)")
		queryPath = flag.String("queries", "", "GFD query file (required)")
		methodStr = flag.String("method", "Grapes", "method spec: name[:key=value,...]; see -list")
		indexPath = flag.String("ix", "", "persist/restore the built index at this path")
		workers   = flag.Int("workers", 0, "per-query verification parallelism (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "hash-partition the dataset into N shards with parallel build and query fan-out (0/1 = unsharded)")
		timeout   = flag.Duration("timeout", 8*time.Hour, "per-stage time budget")
		verbose   = flag.Bool("v", false, "per-query output")
		list      = flag.Bool("list", false, "list registered methods and their parameters")
	)
	flag.Parse()

	if *list {
		engine.FprintMethods(os.Stdout)
		return
	}
	if err := run(*dataPath, *queryPath, *methodStr, *indexPath, *workers, *shards, *timeout, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "gquery:", err)
		os.Exit(1)
	}
}

func run(dataPath, queryPath, methodStr, indexPath string, workers, shards int, timeout time.Duration, verbose bool) error {
	if dataPath == "" || queryPath == "" {
		return fmt.Errorf("-data and -queries are required")
	}
	ds, err := graph.LoadDatasetFile(dataPath)
	if err != nil {
		return fmt.Errorf("loading dataset: %w", err)
	}
	// Queries share the dataset's label dictionary so label IDs agree
	// across the two files.
	qds, err := graph.LoadDatasetFileWithDict(queryPath, &ds.Dict)
	if err != nil {
		return fmt.Errorf("loading queries: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	opts := []engine.Option{engine.WithSpec(methodStr)}
	if indexPath != "" {
		opts = append(opts, engine.WithIndexPath(indexPath))
	}
	if workers > 0 {
		opts = append(opts, engine.WithVerifyWorkers(workers))
	}
	var query func(context.Context, *graph.Graph) (*core.QueryResult, error)
	if shards > 1 {
		s, err := engine.OpenSharded(ctx, ds, shards, opts...)
		if err != nil {
			return err
		}
		st := s.BuildStats()
		if s.Restored() {
			fmt.Printf("restored %s index for %d graphs from %d shards under %s (%.2f MB)\n",
				s.Name(), ds.Len(), shards, indexPath, float64(s.SizeBytes())/(1<<20))
		} else {
			fmt.Printf("indexed %d graphs with %s across %d shards in %v (%d restored, total size %.2f MB)\n",
				ds.Len(), s.Name(), shards, st.Elapsed.Round(time.Millisecond),
				s.RestoredShards(), float64(s.SizeBytes())/(1<<20))
		}
		query = s.Query
	} else {
		eng, err := engine.Open(ctx, ds, opts...)
		if err != nil {
			return err
		}
		m := eng.Method()
		if eng.Restored() {
			fmt.Printf("restored %s index for %d graphs from %s (%.2f MB)\n",
				m.Name(), ds.Len(), indexPath, float64(m.SizeBytes())/(1<<20))
		} else {
			st := eng.BuildStats()
			fmt.Printf("indexed %d graphs with %s in %v (index size %.2f MB)\n",
				ds.Len(), m.Name(), st.Elapsed.Round(time.Millisecond), float64(st.SizeBytes)/(1<<20))
		}
		query = eng.Query
	}

	var cands, answers []graph.IDSet
	var totalTime time.Duration
	for i, q := range qds.Graphs {
		res, err := query(ctx, q)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		cands = append(cands, res.Candidates)
		answers = append(answers, res.Answers)
		totalTime += res.TotalTime()
		if verbose {
			fmt.Printf("query %3d (%d edges): %4d candidates, %4d answers, %v (filter %v, verify %v)\n",
				i, q.NumEdges(), len(res.Candidates), len(res.Answers),
				res.TotalTime().Round(time.Microsecond),
				res.FilterTime.Round(time.Microsecond), res.VerifyTime.Round(time.Microsecond))
		}
	}
	n := len(qds.Graphs)
	if n == 0 {
		return fmt.Errorf("no queries in %s", queryPath)
	}
	fmt.Printf("%d queries: avg time %v, false positive ratio %.4f\n",
		n, (totalTime / time.Duration(n)).Round(time.Microsecond),
		workload.FalsePositiveRatio(cands, answers))
	return nil
}
