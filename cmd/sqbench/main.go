// Command sqbench regenerates the tables and figures of "Performance and
// Scalability of Indexed Subgraph Query Processing Methods" (PVLDB 2015).
//
// Usage:
//
//	sqbench -exp fig2 -scale default
//	sqbench -exp all -scale bench -o results.txt
//	sqbench -exp fig3 -methods Grapes,GGSX,CTindex
//	sqbench -exp fig2 -methods "grapes:workers=12 ggsx:maxPathLen=3"
//	sqbench -exp fig2 -shards 4
//	sqbench -exp fig2 -scale bench -json results.json
//	sqbench -exp fig2 -scale bench -compare BENCH_6.json
//	sqbench -compare BENCH_6.json BENCH_7.json
//	sqbench -list
//	sqbench -describe > docs/METHODS.md
//
// Methods are engine specs: a registered name or alias, optionally with
// ":key=value,..." parameter overrides. Plain names may be separated by
// commas; specs carrying parameters are separated by spaces or semicolons
// (commas belong to the parameter list).
//
// Experiments: table1, fig1, fig2, fig3, fig4, fig5, fig6, ablation,
// cache, router, update, all. Figure 4 is the per-query-size view of
// Figure 3's runs and reuses its sweep; "cache" is the serving-layer
// result-cache sweep over repeated isomorphic traffic, "router" compares
// adaptive routing (static, learned, race) against every fixed method and
// the per-query best-fixed-method oracle on a mixed-shape workload, and
// "update" measures online index maintenance (incremental add/remove)
// against a full rebuild per mutation under interleaved query/update
// traffic (all also included in "ablation").
// Scales: bench (seconds), default (minutes), paper (the full grid — days).
//
// With -json, every experiment and ablation the invocation ran is also
// written as one machine-readable JSON document (per-variant build/query
// timings), the format CI trajectory tooling ingests. With -compare, the
// run is checked against a committed baseline document (the repo pins one
// per PR as BENCH_<n>.json) and exits 1 when a cell regressed more than
// 30%, lost coverage, or drifted its deterministic candidate counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/engine"
	_ "repro/internal/engine/std"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig1, fig2, fig3, fig4, fig5, fig6, ablation, cache, router, update, all")
	scaleName := flag.String("scale", "default", "scale: bench, default, paper")
	methodsFlag := flag.String("methods", "", "method spec subset (default: all six); see -list")
	out := flag.String("o", "", "write the report to this file (default stdout)")
	csvPath := flag.String("csv", "", "also write tidy CSV rows to this file")
	jsonPath := flag.String("json", "", "also write machine-readable results (per-variant build/query timings) to this file")
	comparePath := flag.String("compare", "", "compare this run against a committed -json baseline (e.g. BENCH_6.json) and exit 1 on regression")
	quiet := flag.Bool("q", false, "suppress progress logging")
	shards := flag.Int("shards", 0, "run figure experiments through N-way sharded engines (0/1 = unsharded)")
	list := flag.Bool("list", false, "list registered methods and their parameters")
	describe := flag.Bool("describe", false, "emit the registry-generated method reference (docs/METHODS.md) and exit")
	flag.Parse()

	if *list {
		engine.FprintMethods(os.Stdout)
		return
	}
	if *describe {
		if err := describeTo(*out); err != nil {
			fmt.Fprintln(os.Stderr, "sqbench:", err)
			os.Exit(1)
		}
		return
	}
	if *comparePath != "" && flag.NArg() == 1 {
		// Two-document mode: `sqbench -compare BENCH_6.json BENCH_7.json`
		// gates a committed report directly against a baseline, without
		// running a sweep.
		if err := compareFiles(*comparePath, flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "sqbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *scaleName, *methodsFlag, *out, *csvPath, *jsonPath, *comparePath, *quiet, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "sqbench:", err)
		os.Exit(1)
	}
}

// compareFiles runs the regression gate between two committed -json
// documents and prints first-answer improvements on streaming cells; a
// regression exits non-zero exactly like the fresh-run compare.
func compareFiles(basePath, curPath string) error {
	base, err := bench.LoadJSONReport(basePath)
	if err != nil {
		return fmt.Errorf("compare baseline: %w", err)
	}
	cur, err := bench.LoadJSONReport(curPath)
	if err != nil {
		return fmt.Errorf("compare current: %w", err)
	}
	for _, s := range bench.FirstAnswerImprovements(base, cur) {
		fmt.Fprintln(os.Stderr, "improved:", s)
	}
	if regressions := bench.CompareReports(base, cur, bench.CompareOptions{}); len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "regression:", r)
		}
		return fmt.Errorf("%d regression(s): %s vs %s", len(regressions), curPath, basePath)
	}
	fmt.Fprintf(os.Stderr, "no regressions: %s vs %s\n", curPath, basePath)
	return nil
}

// describeTo writes the registry-generated method reference to path (or
// stdout when path is empty), surfacing Close errors so a failed flush
// never exits 0 with a truncated file.
func describeTo(path string) error {
	if path == "" {
		return engine.WriteMethodsMarkdown(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := engine.WriteMethodsMarkdown(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(expName, scaleName, methodsFlag, outPath, csvPath, jsonPath, comparePath string, quiet bool, shards int) error {
	scale, err := bench.ScaleByName(scaleName)
	if err != nil {
		return err
	}
	methods, specs, err := parseMethods(methodsFlag)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	var log io.Writer
	if !quiet {
		log = os.Stderr
	}
	var csvW io.Writer
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		csvW = f
	}

	ctx := context.Background()
	want := func(name string) bool { return expName == "all" || expName == name }
	ran := false
	var jr *bench.JSONReport
	var jsonF *os.File
	if jsonPath != "" {
		// Open up front, like -o and -csv: a bad path must fail in
		// milliseconds, not after a multi-hour sweep.
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonF = f
		jr = &bench.JSONReport{}
	}
	var baseline *bench.JSONReport
	if comparePath != "" {
		// Load up front too: a missing baseline must not cost a sweep.
		b, err := bench.LoadJSONReport(comparePath)
		if err != nil {
			return fmt.Errorf("compare baseline: %w", err)
		}
		baseline = b
		if jr == nil {
			jr = &bench.JSONReport{}
		}
	}

	if want("table1") {
		names, stats := bench.Table1Stats(scale)
		bench.WriteTable1(w, names, stats)
		if jr != nil {
			jr.Table1 = bench.Table1JSON(names, stats)
		}
		ran = true
	}
	figures := []struct {
		name string
		exp  bench.Experiment
	}{
		{"fig1", bench.Fig1(scale)},
		{"fig2", bench.Fig2(scale)},
		{"fig3", bench.Fig3(scale)},
		{"fig5", bench.Fig5(scale)},
		{"fig6", bench.Fig6(scale)},
	}
	fig4 := want("fig4")
	for _, f := range figures {
		runThis := want(f.name)
		// Figure 4 is derived from Figure 3's sweep.
		if f.name == "fig3" && fig4 {
			runThis = true
		}
		if !runThis {
			continue
		}
		e := f.exp
		e.Methods = methods
		e.MethodSpecs = specs
		e.Shards = shards
		results, err := bench.Run(ctx, e, log)
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		if want(f.name) {
			bench.WriteReport(w, e, results)
			if csvW != nil {
				if err := bench.WriteCSV(csvW, e, results); err != nil {
					return fmt.Errorf("%s csv: %w", f.name, err)
				}
			}
			if jr != nil {
				jr.Experiments = append(jr.Experiments, bench.ExperimentJSON(e, results))
			}
		}
		if f.name == "fig3" && (fig4 || expName == "all") {
			e4 := e
			e4.Name = "fig4"
			e4.Title = "Figure 4: query time per query size, varying density"
			bench.WritePerSizeReport(w, e4, results)
			// Figure 4's per-size data rides in the cells'
			// time_by_size_seconds; serialize the sweep under its own
			// name only when fig3 itself was not requested (else the
			// same cells would appear twice).
			if jr != nil && !want("fig3") {
				jr.Experiments = append(jr.Experiments, bench.ExperimentJSON(e4, results))
			}
		}
		ran = true
	}
	if want("ablation") || want("cache") || want("router") || want("update") {
		ds := bench.AblationDataset(scale)
		if want("ablation") {
			for _, ab := range bench.Ablations() {
				results, err := bench.RunAblation(ctx, ab, ds, scale, log)
				if err != nil {
					return fmt.Errorf("ablation %s: %w", ab.Name, err)
				}
				bench.WriteAblationReport(w, ab, results)
				if jr != nil {
					jr.Ablations = append(jr.Ablations, bench.AblationJSON(ab, results))
				}
			}
		}
		// The serving-layer result-cache sweep runs under both -exp
		// ablation and -exp cache.
		if want("ablation") || want("cache") {
			results, err := bench.RunCacheAblation(ctx, ds, scale, log)
			if err != nil {
				return fmt.Errorf("ablation cache: %w", err)
			}
			bench.WriteCacheAblationReport(w, results)
			if jr != nil {
				jr.Cache = results
			}
		}
		// The adaptive-routing comparison runs under both -exp ablation
		// and -exp router: router policies vs fixed methods vs oracle.
		if want("ablation") || want("router") {
			results, err := bench.RunRouterAblation(ctx, ds, scale, log)
			if err != nil {
				return fmt.Errorf("ablation router: %w", err)
			}
			bench.WriteRouterReport(w, results)
			if jr != nil {
				jr.Router = results
			}
		}
		// The online-mutation comparison runs under both -exp ablation and
		// -exp update: incremental index maintenance vs full rebuild under
		// interleaved query/update traffic.
		if want("ablation") || want("update") {
			results, err := bench.RunUpdateAblation(ctx, scale, log)
			if err != nil {
				return fmt.Errorf("ablation update: %w", err)
			}
			bench.WriteUpdateReport(w, results)
			if jr != nil {
				jr.Update = results
			}
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", expName)
	}
	if jsonF != nil {
		if err := bench.WriteJSONReport(jsonF, jr); err != nil {
			return fmt.Errorf("json report: %w", err)
		}
		if err := jsonF.Close(); err != nil {
			return fmt.Errorf("json report: %w", err)
		}
	}
	if baseline != nil {
		if regressions := bench.CompareReports(baseline, jr, bench.CompareOptions{}); len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "regression:", r)
			}
			return fmt.Errorf("%d regression(s) vs %s", len(regressions), comparePath)
		}
		for _, s := range bench.FirstAnswerImprovements(baseline, jr) {
			fmt.Fprintln(os.Stderr, "improved:", s)
		}
		fmt.Fprintf(os.Stderr, "no regressions vs %s\n", comparePath)
	}
	return nil
}

// parseMethods resolves the -methods flag through the engine registry. Each
// entry is a method spec; entries are separated by whitespace or
// semicolons, and — for plain names without parameters — also by commas, so
// the documented "Grapes,GGSX,CTindex" form keeps working.
func parseMethods(s string) ([]bench.MethodID, map[bench.MethodID]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil, nil
	}
	tokens := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ';'
	})
	var entries []string
	for _, tok := range tokens {
		if strings.ContainsAny(tok, ":=") {
			entries = append(entries, tok)
			continue
		}
		for _, name := range strings.Split(tok, ",") {
			if name != "" {
				entries = append(entries, name)
			}
		}
	}
	var out []bench.MethodID
	specs := map[bench.MethodID]string{}
	for _, entry := range entries {
		id, spec, err := bench.ResolveMethod(entry)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := specs[id]; dup {
			return nil, nil, fmt.Errorf("method %s selected twice", id)
		}
		specs[id] = spec
		out = append(out, id)
	}
	return out, specs, nil
}
