// Command sqnode is one member of a query cluster: it builds (or restores)
// engines for the logical shards the cluster manifest assigns to it and
// serves them to the coordinator over the node protocol.
//
// Every node loads the same dataset file and partitions it with the same
// consistent hash the in-process sharded engine uses, so the cluster's
// answers are identical to a single machine's. The coordinator (sqserve
// -cluster) routes queries, mutations, and shard re-replication.
//
// Usage:
//
//	sqnode -data molecules.gfd -manifest cluster.json -name n0 -addr :7501
//	sqnode -data molecules.gfd -manifest cluster.json -name n1 -addr :7502 -ix n1.idx
//
// The node listens immediately: /healthz answers 200 from the start
// (liveness), while /readyz answers 503 until every assigned shard's index
// is built and flips back to 503 during graceful drain — so a coordinator
// or orchestrator never routes to a node that cannot serve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/graph"
)

func main() {
	var (
		dataPath     = flag.String("data", "", "GFD dataset file (required); every node loads the full file and serves its hash partition")
		manifestPath = flag.String("manifest", "", "cluster manifest JSON (required)")
		name         = flag.String("name", "", "this node's name in the manifest (required)")
		methodStr    = flag.String("method", "grapes", "method spec: name[:key=value,...]; must agree across the cluster")
		indexPath    = flag.String("ix", "", "persistence base: shard k persists at <ix>.node-shard-<k>")
		verifyW      = flag.Int("workers", 0, "node-wide verification parallelism, divided across shards (0 = GOMAXPROCS)")
		addr         = flag.String("addr", ":7501", "listen address")
		reqTimeout   = flag.Duration("req-timeout", 30*time.Second, "per-request execution budget")
		buildTimeout = flag.Duration("build-timeout", 8*time.Hour, "shard index construction budget")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight requests")
		slowQuery    = flag.Duration("slow-query", 0, "log shard queries slower than this as structured JSON with their span tree (0 disables)")
		enablePprof  = flag.Bool("pprof", false, "serve runtime profiles under /debug/pprof")
		list         = flag.Bool("list", false, "list registered methods and their parameters")
	)
	flag.Parse()

	if *list {
		engine.FprintMethods(os.Stdout)
		return
	}
	if err := run(*dataPath, *manifestPath, *name, *methodStr, *indexPath, *verifyW, *addr,
		*reqTimeout, *buildTimeout, *drainTimeout, *slowQuery, *enablePprof); err != nil {
		fmt.Fprintln(os.Stderr, "sqnode:", err)
		os.Exit(1)
	}
}

func run(dataPath, manifestPath, name, methodStr, indexPath string, verifyW int, addr string,
	reqTimeout, buildTimeout, drainTimeout, slowQuery time.Duration, enablePprof bool) error {
	if dataPath == "" || manifestPath == "" || name == "" {
		return fmt.Errorf("-data, -manifest, and -name are required")
	}
	man, err := cluster.LoadManifest(manifestPath)
	if err != nil {
		return err
	}
	idx := man.NodeIndex(name)
	if idx < 0 {
		return fmt.Errorf("node %q is not in the manifest (%s)", name, man)
	}
	shards := man.ShardsOf(idx)

	// Listen before building: liveness is up from the first moment, and
	// readiness honestly reports the build in progress as 503.
	var handler atomic.Value
	handler.Store(bootstrapHandler())
	httpSrv := &http.Server{Addr: addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	})}
	serveErr := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
	}()

	ds, err := graph.LoadDatasetFile(dataPath)
	if err != nil {
		httpSrv.Close()
		return fmt.Errorf("loading dataset: %w", err)
	}
	buildCtx, cancel := context.WithTimeout(context.Background(), buildTimeout)
	t0 := time.Now()
	node, err := cluster.NewNode(buildCtx, ds, cluster.NodeConfig{
		Name:          name,
		Spec:          methodStr,
		ShardCount:    man.Shards,
		Shards:        shards,
		IndexPath:     indexPath,
		VerifyWorkers: verifyW,
	})
	cancel()
	if err != nil {
		httpSrv.Close()
		return err
	}
	ns := cluster.NewNodeServer(node, cluster.NodeServerConfig{
		RequestTimeout: reqTimeout,
		SlowQuery:      slowQuery,
		EnablePprof:    enablePprof,
	})
	handler.Store(ns.Handler())
	log.Printf("node %s ready: %s over %d graphs, shards %v of %d in %v",
		name, node.Spec(), ds.Len(), shards, man.Shards, time.Since(t0).Round(time.Millisecond))

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case <-sigs:
	}
	log.Printf("draining: readiness down, waiting up to %v for in-flight requests", drainTimeout)
	ns.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}

// bootstrapHandler serves the pre-ready window: alive, not ready.
func bootstrapHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"building shard indexes"}`)
	})
	return mux
}
