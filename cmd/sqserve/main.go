// Command sqserve is the long-lived query service: it indexes (or restores)
// a GFD dataset once and serves subgraph queries over HTTP/JSON, with an
// isomorphism-invariant result cache, admission control, and NDJSON
// streaming.
//
// Usage:
//
//	sqserve -data molecules.gfd -method grapes:workers=8 -addr :7474
//	sqserve -data molecules.gfd -method ggsx -shards 4 -ix mol.idx
//	sqserve -data molecules.gfd -method router:methods=grapes+ggsx+gcode -ix mol.idx
//	sqserve -data molecules.gfd -cache-entries 0            # cache disabled
//	sqserve -cluster cluster.json -addr :7474               # coordinator over sqnode members
//
// With -method router:..., several method indexes are co-built and every
// query is routed to the predicted-cheapest method; responses carry the
// serving method, /stats exposes win rates and the learned cost model, and
// a clean drain persists the routing state under -ix so the next start
// routes warm.
//
// With -cluster, sqserve builds no index at all: it becomes the cluster
// coordinator over the shard nodes in the manifest (see sqnode), fanning
// queries across shard owners, hedging slow legs to replicas, routing
// mutations with epoch propagation, and re-replicating shards off dead
// nodes — behind the same public endpoints, so gquery -remote is unchanged.
//
// Endpoints:
//
//	POST   /query        one GraphJSON query; ?stream=1 streams NDJSON answers,
//	                     ?limit=N stops after the first N answers (the lazy
//	                     pipeline never verifies the unreturned tail)
//	POST   /batch        {"queries": [GraphJSON, ...], "workers": N}
//	POST   /graphs       add a graph to the live dataset (online index maintenance)
//	DELETE /graphs/{id}  tombstone a graph; its id is never reused
//	GET    /methods      the live method registry
//	GET    /stats        cache, admission, request, and epoch counters
//	GET    /healthz      liveness: 200 while the process runs
//	GET    /readyz       readiness: 503 during index build and graceful drain
//	GET    /cluster      (coordinator only) topology, per-node health, fan-out counters
//	GET    /metrics      Prometheus text exposition of the same counters /stats reports
//	GET    /metrics/cluster  (coordinator only) federated exposition: every node's
//	                     /metrics relabeled with node="<addr>" plus summed _agg families
//	GET    /health/score derived ok/degraded/critical verdict with per-check reasons
//	                     (error rate, p99 vs -slo, queue depth, cluster membership)
//	GET    /debug/pprof  runtime profiles (only with -pprof)
//
// With -slow-query D, any query slower than D is logged as one structured
// JSON line carrying the query's span tree, plan, and pipeline counters —
// enough to diagnose it after the fact without re-running it.
//
// The dataset is live: mutations maintain every index online
// (incrementally for methods that support it), bump the dataset epoch,
// and invalidate cached results from earlier epochs lazily — a stale
// answer is never replayed.
//
// The listener is up before the index build finishes: /healthz answers 200
// from the first moment while /readyz answers 503 until the engine is
// ready, so orchestrators can distinguish "starting" from "dead".
//
// SIGINT/SIGTERM drains gracefully: /readyz flips to 503, new query work is
// rejected, and in-flight requests finish (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/graph"
	"repro/internal/router"
	"repro/internal/server"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "GFD dataset file (required unless -cluster)")
		methodStr = flag.String("method", "grapes", "method spec: name[:key=value,...]; see -list")
		indexPath = flag.String("ix", "", "persist/restore the built index at this path")
		shards    = flag.Int("shards", 0, "hash-partition the dataset into N shards (0/1 = unsharded)")
		verifyW   = flag.Int("workers", 0, "per-query verification parallelism (0 = GOMAXPROCS)")
		addr      = flag.String("addr", ":7474", "listen address")

		clusterManifest = flag.String("cluster", "", "cluster manifest JSON: serve as the coordinator over sqnode members instead of building a local index")
		nodeTimeout     = flag.Duration("node-timeout", 10*time.Second, "coordinator: per fan-out leg budget")
		hedgeDelay      = flag.Duration("hedge-delay", 2*time.Second, "coordinator: duplicate a slow leg to a replica after this long (<0 disables)")
		probeInterval   = flag.Duration("probe-interval", 2*time.Second, "coordinator: node health-check period")

		cacheEntries = flag.Int("cache-entries", server.DefaultMaxEntries, "result cache capacity in entries (0 disables the cache)")
		cacheBytes   = flag.Int64("cache-bytes", server.DefaultMaxBytes, "result cache capacity in bytes")
		cacheTTL     = flag.Duration("cache-ttl", 0, "result cache entry lifetime (0 = no expiry)")

		concurrency  = flag.Int("concurrency", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "max requests queued beyond the executing ones before 429 (0 = 4x concurrency)")
		reqTimeout   = flag.Duration("req-timeout", 30*time.Second, "per-request execution budget")
		buildTimeout = flag.Duration("build-timeout", 8*time.Hour, "index construction budget")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight requests")

		slowQuery   = flag.Duration("slow-query", 0, "log queries slower than this as structured JSON with their span tree (0 disables)")
		slo         = flag.Duration("slo", 0, "p99 latency target /health/score compares against (0 disables the latency check)")
		enablePprof = flag.Bool("pprof", false, "serve runtime profiles under /debug/pprof")

		list = flag.Bool("list", false, "list registered methods and their parameters")
	)
	flag.Parse()

	if *list {
		engine.FprintMethods(os.Stdout)
		return
	}
	var err error
	if *clusterManifest != "" {
		err = runCoordinator(*clusterManifest, *addr, *nodeTimeout, *hedgeDelay, *probeInterval, *reqTimeout, *drainTimeout, *slowQuery, *slo, *enablePprof)
	} else {
		err = run(*dataPath, *methodStr, *indexPath, *shards, *verifyW, *addr,
			*cacheEntries, *cacheBytes, *cacheTTL, *concurrency, *queue,
			*reqTimeout, *buildTimeout, *drainTimeout, *slowQuery, *slo, *enablePprof)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqserve:", err)
		os.Exit(1)
	}
}

// bootstrapHandler serves the pre-ready window: alive, not ready.
func bootstrapHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"starting up"}`)
	})
	return mux
}

// listenEarly starts the listener on a swappable handler so liveness is up
// (and readiness honestly 503) while the engine builds. The returned store
// swaps in the real handler when ready.
func listenEarly(addr string) (*http.Server, func(http.Handler), chan error) {
	var h atomic.Value
	h.Store(bootstrapHandler())
	srv := &http.Server{Addr: addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.Load().(http.Handler).ServeHTTP(w, r)
	})}
	serveErr := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
	}()
	return srv, func(next http.Handler) { h.Store(next) }, serveErr
}

func runCoordinator(manifestPath, addr string, nodeTimeout, hedgeDelay, probeInterval, reqTimeout, drainTimeout, slowQuery, slo time.Duration, enablePprof bool) error {
	man, err := cluster.LoadManifest(manifestPath)
	if err != nil {
		return err
	}
	httpSrv, swap, serveErr := listenEarly(addr)
	coord, err := cluster.NewCoordinator(context.Background(), man, cluster.CoordConfig{
		NodeTimeout:   nodeTimeout,
		HedgeDelay:    hedgeDelay,
		ProbeInterval: probeInterval,
	})
	if err != nil {
		httpSrv.Close()
		return err
	}
	cs := cluster.NewCoordServer(coord, cluster.CoordServerConfig{
		RequestTimeout: reqTimeout,
		SlowQuery:      slowQuery,
		SLO:            slo,
		EnablePprof:    enablePprof,
	})
	swap(cs.Handler())
	log.Printf("coordinator ready: %s, method %s on %s", man, coord.Spec(), addr)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		coord.Close()
		return err
	case <-sigs:
	}
	log.Printf("draining: readiness down, waiting up to %v for in-flight requests", drainTimeout)
	cs.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err = httpSrv.Shutdown(ctx)
	coord.Close()
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}

func run(dataPath, methodStr, indexPath string, shards, verifyW int, addr string,
	cacheEntries int, cacheBytes int64, cacheTTL time.Duration,
	concurrency, queue int, reqTimeout, buildTimeout, drainTimeout, slowQuery, slo time.Duration,
	enablePprof bool) error {
	if dataPath == "" {
		return fmt.Errorf("-data is required")
	}
	httpSrv, swap, serveErr := listenEarly(addr)
	fail := func(err error) error {
		httpSrv.Close()
		return err
	}
	ds, err := graph.LoadDatasetFile(dataPath)
	if err != nil {
		return fail(fmt.Errorf("loading dataset: %w", err))
	}
	d, p, err := engine.ParseSpec(methodStr)
	if err != nil {
		return fail(err)
	}
	spec := p.Spec()

	buildCtx, cancel := context.WithTimeout(context.Background(), buildTimeout)
	defer cancel()
	opts := []engine.Option{engine.WithSpec(methodStr)}
	if indexPath != "" {
		opts = append(opts, engine.WithIndexPath(indexPath))
	}
	if verifyW > 0 {
		opts = append(opts, engine.WithVerifyWorkers(verifyW))
	}
	t0 := time.Now()
	q, err := engine.OpenAny(buildCtx, ds, shards, opts...)
	if err != nil {
		return fail(err)
	}
	switch e := q.(type) {
	case *engine.Sharded:
		log.Printf("engine ready: %s over %d graphs, %d shards (%d restored) in %v, index %.2f MB",
			d.Display, ds.Len(), shards, e.RestoredShards(),
			time.Since(t0).Round(time.Millisecond), float64(e.SizeBytes())/(1<<20))
	case *engine.Engine:
		verb := "built"
		if e.Restored() {
			verb = "restored"
		}
		log.Printf("engine ready: %s over %d graphs, index %s in %v (%.2f MB)",
			d.Display, ds.Len(), verb, time.Since(t0).Round(time.Millisecond),
			float64(e.Method().SizeBytes())/(1<<20))
		shards = 0
	case *router.Multi:
		log.Printf("engine ready: router over %s (%s policy), %d graphs (%d restored) in %v, indexes %.2f MB",
			strings.Join(e.Methods(), "+"), e.Policy(), ds.Len(), e.RestoredMethods(),
			time.Since(t0).Round(time.Millisecond), float64(e.BuildStats().SizeBytes)/(1<<20))
		if shards < 2 {
			shards = 0
		}
	}

	srv := server.New(q, server.Config{
		Spec:   spec,
		Shards: shards,
		Cache: server.CacheConfig{
			Disabled:   cacheEntries == 0,
			MaxEntries: cacheEntries,
			MaxBytes:   cacheBytes,
			TTL:        cacheTTL,
		},
		Workers:        concurrency,
		MaxQueue:       queue,
		RequestTimeout: reqTimeout,
		SlowQuery:      slowQuery,
		SLO:            slo,
		EnablePprof:    enablePprof,
	})
	swap(srv.Handler())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sigs
		log.Printf("draining: rejecting new work, waiting up to %v for in-flight requests", drainTimeout)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		done <- httpSrv.Shutdown(ctx)
	}()

	log.Printf("serving %s (%s) on %s", ds.Name, spec, addr)
	select {
	case err := <-serveErr:
		return err
	case err := <-done:
		if err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
	}
	// A routed engine's learned cost model is state worth keeping: persist
	// it on a clean drain so the next start routes warm.
	if m, ok := q.(*router.Multi); ok && indexPath != "" {
		if err := m.Save(indexPath); err != nil {
			log.Printf("saving routing state: %v", err)
		} else {
			log.Printf("routing state saved under %s", indexPath)
		}
	}
	log.Printf("drained cleanly")
	return nil
}
