// Command sqserve is the long-lived query service: it indexes (or restores)
// a GFD dataset once and serves subgraph queries over HTTP/JSON, with an
// isomorphism-invariant result cache, admission control, and NDJSON
// streaming.
//
// Usage:
//
//	sqserve -data molecules.gfd -method grapes:workers=8 -addr :7474
//	sqserve -data molecules.gfd -method ggsx -shards 4 -ix mol.idx
//	sqserve -data molecules.gfd -method router:methods=grapes+ggsx+gcode -ix mol.idx
//	sqserve -data molecules.gfd -cache-entries 0            # cache disabled
//
// With -method router:..., several method indexes are co-built and every
// query is routed to the predicted-cheapest method; responses carry the
// serving method, /stats exposes win rates and the learned cost model, and
// a clean drain persists the routing state under -ix so the next start
// routes warm.
//
// Endpoints:
//
//	POST   /query        one GraphJSON query; ?stream=1 streams NDJSON answers
//	POST   /batch        {"queries": [GraphJSON, ...], "workers": N}
//	POST   /graphs       add a graph to the live dataset (online index maintenance)
//	DELETE /graphs/{id}  tombstone a graph; its id is never reused
//	GET    /methods      the live method registry
//	GET    /stats        cache, admission, request, and epoch counters
//	GET    /healthz      200 serving, 503 draining
//
// The dataset is live: mutations maintain every index online
// (incrementally for methods that support it), bump the dataset epoch,
// and invalidate cached results from earlier epochs lazily — a stale
// answer is never replayed.
//
// SIGINT/SIGTERM drains gracefully: health flips to 503, new query work is
// rejected, and in-flight requests finish (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/graph"
	"repro/internal/router"
	"repro/internal/server"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "GFD dataset file (required)")
		methodStr = flag.String("method", "grapes", "method spec: name[:key=value,...]; see -list")
		indexPath = flag.String("ix", "", "persist/restore the built index at this path")
		shards    = flag.Int("shards", 0, "hash-partition the dataset into N shards (0/1 = unsharded)")
		verifyW   = flag.Int("workers", 0, "per-query verification parallelism (0 = GOMAXPROCS)")
		addr      = flag.String("addr", ":7474", "listen address")

		cacheEntries = flag.Int("cache-entries", server.DefaultMaxEntries, "result cache capacity in entries (0 disables the cache)")
		cacheBytes   = flag.Int64("cache-bytes", server.DefaultMaxBytes, "result cache capacity in bytes")
		cacheTTL     = flag.Duration("cache-ttl", 0, "result cache entry lifetime (0 = no expiry)")

		concurrency  = flag.Int("concurrency", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "max requests queued beyond the executing ones before 429 (0 = 4x concurrency)")
		reqTimeout   = flag.Duration("req-timeout", 30*time.Second, "per-request execution budget")
		buildTimeout = flag.Duration("build-timeout", 8*time.Hour, "index construction budget")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight requests")

		list = flag.Bool("list", false, "list registered methods and their parameters")
	)
	flag.Parse()

	if *list {
		engine.FprintMethods(os.Stdout)
		return
	}
	if err := run(*dataPath, *methodStr, *indexPath, *shards, *verifyW, *addr,
		*cacheEntries, *cacheBytes, *cacheTTL, *concurrency, *queue,
		*reqTimeout, *buildTimeout, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "sqserve:", err)
		os.Exit(1)
	}
}

func run(dataPath, methodStr, indexPath string, shards, verifyW int, addr string,
	cacheEntries int, cacheBytes int64, cacheTTL time.Duration,
	concurrency, queue int, reqTimeout, buildTimeout, drainTimeout time.Duration) error {
	if dataPath == "" {
		return fmt.Errorf("-data is required")
	}
	ds, err := graph.LoadDatasetFile(dataPath)
	if err != nil {
		return fmt.Errorf("loading dataset: %w", err)
	}
	d, p, err := engine.ParseSpec(methodStr)
	if err != nil {
		return err
	}
	spec := p.Spec()

	buildCtx, cancel := context.WithTimeout(context.Background(), buildTimeout)
	defer cancel()
	opts := []engine.Option{engine.WithSpec(methodStr)}
	if indexPath != "" {
		opts = append(opts, engine.WithIndexPath(indexPath))
	}
	if verifyW > 0 {
		opts = append(opts, engine.WithVerifyWorkers(verifyW))
	}
	t0 := time.Now()
	q, err := engine.OpenAny(buildCtx, ds, shards, opts...)
	if err != nil {
		return err
	}
	switch e := q.(type) {
	case *engine.Sharded:
		log.Printf("engine ready: %s over %d graphs, %d shards (%d restored) in %v, index %.2f MB",
			d.Display, ds.Len(), shards, e.RestoredShards(),
			time.Since(t0).Round(time.Millisecond), float64(e.SizeBytes())/(1<<20))
	case *engine.Engine:
		verb := "built"
		if e.Restored() {
			verb = "restored"
		}
		log.Printf("engine ready: %s over %d graphs, index %s in %v (%.2f MB)",
			d.Display, ds.Len(), verb, time.Since(t0).Round(time.Millisecond),
			float64(e.Method().SizeBytes())/(1<<20))
		shards = 0
	case *router.Multi:
		log.Printf("engine ready: router over %s (%s policy), %d graphs (%d restored) in %v, indexes %.2f MB",
			strings.Join(e.Methods(), "+"), e.Policy(), ds.Len(), e.RestoredMethods(),
			time.Since(t0).Round(time.Millisecond), float64(e.BuildStats().SizeBytes)/(1<<20))
		if shards < 2 {
			shards = 0
		}
	}

	srv := server.New(q, server.Config{
		Spec:   spec,
		Shards: shards,
		Cache: server.CacheConfig{
			Disabled:   cacheEntries == 0,
			MaxEntries: cacheEntries,
			MaxBytes:   cacheBytes,
			TTL:        cacheTTL,
		},
		Workers:        concurrency,
		MaxQueue:       queue,
		RequestTimeout: reqTimeout,
	})
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sigs
		log.Printf("draining: rejecting new work, waiting up to %v for in-flight requests", drainTimeout)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		done <- httpSrv.Shutdown(ctx)
	}()

	log.Printf("serving %s (%s) on %s", ds.Name, spec, addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// A routed engine's learned cost model is state worth keeping: persist
	// it on a clean drain so the next start routes warm.
	if m, ok := q.(*router.Multi); ok && indexPath != "" {
		if err := m.Save(indexPath); err != nil {
			log.Printf("saving routing state: %v", err)
		} else {
			log.Printf("routing state saved under %s", indexPath)
		}
	}
	log.Printf("drained cleanly")
	return nil
}
