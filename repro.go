// Package repro is a from-scratch Go reproduction of
//
//	Katsarou, Ntarmos, Triantafillou:
//	"Performance and Scalability of Indexed Subgraph Query Processing
//	Methods", PVLDB 8(12), 2015.
//
// It implements the six filter-and-verify subgraph query indexing methods
// the paper compares — Grapes, GraphGrepSX, CT-Index, gIndex, Tree+Δ, and
// gCode — together with every substrate they need (VF2 subgraph
// isomorphism, canonical labels, gSpan mining, spectral codes), the paper's
// dataset generators and query workloads, and a benchmark harness that
// regenerates every table and figure of the evaluation.
//
// # Quick start
//
// The front door is the engine API: methods are named by spec strings
// ("grapes", "gIndex:maxPatterns=20000", "ctindex:fingerprintBits=1024"),
// resolved through a registry the method packages populate, and served
// through one plan-based filter-and-verify pipeline:
//
//	ds := repro.NewSyntheticDataset(repro.SynthConfig{
//		NumGraphs: 100, MeanNodes: 50, MeanDensity: 0.05, NumLabels: 10,
//	})
//	eng, err := repro.Open(ctx, ds, repro.WithSpec("grapes:workers=8"))
//	if err != nil { ... }
//	res, err := eng.Query(ctx, q) // res.Answers holds the matching graph IDs
//
// Open transparently persists and restores indexes when given
// WithIndexPath, so an expensive build is paid once per dataset; Stream
// yields answers incrementally as verification confirms them.
//
// The underlying packages remain importable for finer control:
// internal/engine defines the registry and lifecycle, internal/core the
// Method contract and pipeline, internal/bench the experiment harness, and
// one package per indexing method holds its implementation.
package repro

import (
	"context"
	"iter"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	_ "repro/internal/engine/std" // register all built-in methods
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/subiso"
	"repro/internal/workload"
)

// Re-exported model types.
type (
	// Graph is a vertex-labelled undirected graph.
	Graph = graph.Graph
	// Dataset is an ordered collection of graphs with a shared label space.
	Dataset = graph.Dataset
	// Label is an interned vertex label.
	Label = graph.Label
	// ID identifies a graph within a dataset.
	ID = graph.ID
	// IDSet is a sorted set of graph IDs (candidate/answer sets).
	IDSet = graph.IDSet
	// Stats summarizes a dataset (Table 1 characteristics).
	Stats = graph.Stats

	// Method is one indexed subgraph query processing method.
	Method = core.Method
	// Processor runs the filter-and-verify pipeline over a built Method.
	Processor = core.Processor
	// QueryResult reports one query's candidates, answers, and timings.
	QueryResult = core.QueryResult
	// BuildStats reports on index construction.
	BuildStats = core.BuildStats
	// BatchOptions configures Processor.QueryBatch, the parallel workload
	// runner.
	BatchOptions = core.BatchOptions
	// BatchResult is one entry of a QueryBatch outcome.
	BatchResult = core.BatchResult
	// WorkloadSummary aggregates a batch into the paper's workload metrics.
	WorkloadSummary = core.WorkloadSummary

	// Engine is a built (or restored) index over one dataset serving
	// subgraph queries; construct with Open.
	Engine = engine.Engine
	// ShardedEngine is a horizontally partitioned engine: the dataset is
	// hash-partitioned, per-shard indexes build in parallel, and queries
	// fan out across the shards and merge; construct with OpenSharded.
	ShardedEngine = engine.Sharded
	// Querier is the query surface Engine, ShardedEngine, and CachedEngine
	// share: Query, QueryBatch, and Stream over one dataset.
	Querier = engine.Querier
	// Mutable is the online-mutation capability every engine shape
	// implements: AddGraph/RemoveGraph with online index maintenance
	// (incremental for methods implementing IncrementalIndexer, rebuild
	// otherwise) and a monotonically increasing dataset Epoch.
	Mutable = engine.Mutable
	// IncrementalIndexer is the per-method incremental maintenance
	// contract: folding one graph into — or dropping one graph from — a
	// built index without a full rebuild.
	IncrementalIndexer = core.IncrementalIndexer
	// Option configures Open.
	Option = engine.Option
	// MethodInfo describes one registered method: naming, typed parameters,
	// defaults.
	MethodInfo = engine.Descriptor

	// RoutedEngine is the adaptive method router: several co-built method
	// indexes over one dataset, each query routed to the predicted-cheapest
	// method by a cost model learned online from observed latencies;
	// construct with OpenRouted (or OpenAny with a "router:..." spec).
	RoutedEngine = router.Multi
	// RouterConfig configures OpenRouted: the method set plus routing
	// policy, exploration, persistence, and shard options.
	RouterConfig = router.Config
	// RouterOptions is the routing-policy part of RouterConfig.
	RouterOptions = router.Options
	// RouterStats is the router's observable state: per-method win rates
	// and the learned cost model's cells.
	RouterStats = router.Snapshot
	// QueryFeatures is the cheap per-query feature vector routing keys on.
	QueryFeatures = router.Features

	// CachedEngine wraps any Querier with an isomorphism-invariant result
	// cache and single-flight deduplication; construct with NewCached.
	CachedEngine = server.CachedEngine
	// CacheConfig bounds the serving layer's result cache.
	CacheConfig = server.CacheConfig
	// CacheStats counts cache and deduplication activity.
	CacheStats = server.CacheStats
	// Server is the HTTP/JSON query service with admission control;
	// construct with NewServer and serve its Handler.
	Server = server.Server
	// ServerConfig configures the HTTP query service.
	ServerConfig = server.Config

	// SynthConfig parameterizes the GraphGen-style synthetic generator.
	SynthConfig = gen.SynthConfig
	// RealConfig parameterizes the real-dataset simulators.
	RealConfig = gen.RealConfig
	// WorkloadConfig parameterizes random-walk query generation.
	WorkloadConfig = workload.Config
	// MixedWorkloadConfig parameterizes mixed-shape, mixed-size query
	// generation — the traffic adaptive routing is designed for.
	MixedWorkloadConfig = workload.MixedConfig

	// MethodID names one of the six methods.
	MethodID = bench.MethodID
	// Experiment describes one figure-regenerating benchmark run.
	Experiment = bench.Experiment
	// Scale selects the bench/default/paper grid sizes.
	Scale = bench.Scale
)

// The six methods compared by the paper.
const (
	Grapes    = bench.Grapes
	GGSX      = bench.GGSX
	CTIndex   = bench.CTIndex
	GIndex    = bench.GIndex
	TreeDelta = bench.TreeDelta
	GCode     = bench.GCode
)

// Engine options, re-exported from internal/engine.
var (
	// WithSpec selects the method by spec string (default "grapes").
	WithSpec = engine.WithSpec
	// WithMethod supplies an already-constructed unbuilt method.
	WithMethod = engine.WithMethod
	// WithIndexPath enables transparent index persistence across runs.
	WithIndexPath = engine.WithIndexPath
	// WithVerifyWorkers sets per-query verification parallelism.
	WithVerifyWorkers = engine.WithVerifyWorkers
)

// Table 1 dataset simulator presets.
var (
	AIDS = gen.AIDS
	PDBS = gen.PDBS
	PCM  = gen.PCM
	PPI  = gen.PPI
)

// NewCached wraps an opened engine (flat or sharded) with the serving
// layer's result cache: isomorphic queries hit regardless of vertex
// ordering, and concurrent identical queries share one computation.
func NewCached(q Querier, cfg CacheConfig) *CachedEngine { return server.NewCached(q, cfg) }

// NewServer wraps an opened engine in the HTTP/JSON query service —
// /query, /batch, /methods, /stats, /healthz — with a result cache and
// admission control; serve its Handler with net/http.
func NewServer(q Querier, cfg ServerConfig) *Server { return server.New(q, cfg) }

// Open builds (or, with WithIndexPath, transparently restores) an index
// over ds and returns an Engine serving queries through the plan-based
// filter-and-verify pipeline.
func Open(ctx context.Context, ds *Dataset, opts ...Option) (*Engine, error) {
	return engine.Open(ctx, ds, opts...)
}

// OpenSharded hash-partitions ds into the given number of shards, builds
// one index of the configured method per shard concurrently (or restores
// them from independent per-shard files under WithIndexPath), and returns a
// fan-out engine whose answers are identical to the unsharded Open's for
// every method. It is the scaling path: build wall-time drops with the
// shard count, and a corrupt shard file rebuilds alone.
func OpenSharded(ctx context.Context, ds *Dataset, shards int, opts ...Option) (*ShardedEngine, error) {
	return engine.OpenSharded(ctx, ds, shards, opts...)
}

// OpenRouted co-builds one index per configured method over ds —
// concurrently, on a GOMAXPROCS-bounded pool — and returns the adaptive
// router over them: every query is served by the method a per-feature-
// bucket cost model predicts cheapest, learned online from observed
// latencies (with static heuristics from the paper's findings while cold).
// Answers are identical to any single method's; only latency moves.
func OpenRouted(ctx context.Context, ds *Dataset, cfg RouterConfig) (*RoutedEngine, error) {
	return router.Open(ctx, ds, cfg)
}

// OpenAny is the spec-driven front door over every engine shape: composite
// specs ("router:methods=grapes+ggsx+gcode,policy=race") open the adaptive
// router, shards > 1 opens a sharded engine, and anything else a plain
// Engine.
func OpenAny(ctx context.Context, ds *Dataset, shards int, opts ...Option) (Querier, error) {
	return engine.OpenAny(ctx, ds, shards, opts...)
}

// AddGraph adds g to a live engine's dataset under a fresh ID, maintaining
// the index online (flat, sharded, routed, and cached engines all support
// it). It fails with an error for engine shapes without the Mutable
// capability.
func AddGraph(ctx context.Context, q Querier, g *Graph) (ID, error) {
	m, ok := q.(Mutable)
	if !ok {
		return 0, engine.ErrNotMutable
	}
	return m.AddGraph(ctx, g)
}

// RemoveGraph tombstones graph id in a live engine: the id is never
// reused, and the graph can never again appear in any candidate or answer
// set.
func RemoveGraph(ctx context.Context, q Querier, id ID) error {
	m, ok := q.(Mutable)
	if !ok {
		return engine.ErrNotMutable
	}
	return m.RemoveGraph(ctx, id)
}

// EpochOf returns the engine's dataset epoch — bumped by every mutation —
// and whether the engine exposes one.
func EpochOf(q Querier) (uint64, bool) {
	m, ok := q.(Mutable)
	if !ok {
		return 0, false
	}
	return m.Epoch(), true
}

// New constructs an unbuilt index from a method spec string: a registered
// name or alias ("grapes", "GGSX", "tree+delta", ...), optionally followed
// by ":key=value,..." parameter overrides, e.g.
// "grapes:maxPathLen=4,workers=8". It returns an error for unknown methods,
// unknown parameters, and malformed values.
func New(spec string) (Method, error) {
	return engine.New(spec)
}

// Methods returns the descriptors of all registered methods, in
// registration order; each carries the method's names, parameters, and
// defaults.
func Methods() []*MethodInfo {
	return engine.Descriptors()
}

// Stream processes q against a built method and yields matching graph IDs
// as verification confirms them. Engine.Stream is the usual entry point;
// this is the free-function form for a caller holding a bare Method.
func Stream(ctx context.Context, m Method, ds *Dataset, q *Graph) iter.Seq2[ID, error] {
	return core.StreamAnswers(ctx, m, ds, q)
}

// NewIndex returns an unbuilt index of the given method with the paper's
// §4.1 default parameters.
//
// Deprecated: NewIndex panics on an unknown method id. Use New, which
// returns an error and accepts parameter overrides.
func NewIndex(id MethodID) Method {
	m, err := New(string(id))
	if err != nil {
		panic(err)
	}
	return m
}

// NewProcessor wraps a built method and its dataset into a query processor.
func NewProcessor(m Method, ds *Dataset) *Processor {
	return core.NewProcessor(m, ds)
}

// NewSyntheticDataset generates a synthetic dataset per §4.2.
func NewSyntheticDataset(cfg SynthConfig) *Dataset {
	return gen.Synthetic(cfg)
}

// NewRealisticDataset generates a simulated real dataset matched to Table 1
// statistics; see the AIDS, PDBS, PCM, PPI presets and RealConfig.Scaled.
func NewRealisticDataset(cfg RealConfig) *Dataset {
	return gen.Realistic(cfg)
}

// GenerateQueries extracts a random-walk query workload per §4.3.
func GenerateQueries(ds *Dataset, cfg WorkloadConfig) ([]*Graph, error) {
	return workload.Generate(ds, cfg)
}

// GenerateMixedQueries extracts a workload mixing query sizes and shapes
// (walks, simple paths, random subtrees), shuffled — traffic whose best
// indexing method flips query by query.
func GenerateMixedQueries(ds *Dataset, cfg MixedWorkloadConfig) ([]*Graph, error) {
	return workload.GenerateMixed(ds, cfg)
}

// IsSubgraph tests q ⊆ g directly with VF2 — the naive no-index baseline.
func IsSubgraph(q, g *Graph) bool {
	return subiso.Exists(q, g)
}

// BruteForceAnswers scans the whole dataset with VF2, the paper's naive
// method and this repository's ground truth.
func BruteForceAnswers(ctx context.Context, ds *Dataset, q *Graph) (IDSet, error) {
	return core.BruteForceAnswers(ctx, ds, q)
}

// FalsePositiveRatio computes equation (3) over a workload's candidate and
// answer sets.
func FalsePositiveRatio(candidates, answers []IDSet) float64 {
	return workload.FalsePositiveRatio(candidates, answers)
}

// Summarize aggregates a QueryBatch outcome into workload-level metrics.
func Summarize(results []BatchResult) WorkloadSummary {
	return core.Summarize(results)
}

// SaveIndex persists a built index to a file. All six methods implement
// core.Persistable, so an expensive build can be paid once per dataset.
// The index is written to a temporary file and renamed into place, so a
// failure mid-stream never leaves a partial index at path.
func SaveIndex(path string, m Method) error {
	return engine.SaveMethod(path, m)
}

// LoadIndex restores a previously saved index of the given method over the
// dataset it was built from.
func LoadIndex(path string, id MethodID, ds *Dataset) (Method, error) {
	m, err := New(string(id))
	if err != nil {
		return nil, err
	}
	if err := engine.LoadMethod(path, m, ds); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadDataset reads a GFD text dataset from a file.
func LoadDataset(path string) (*Dataset, error) {
	return graph.LoadDatasetFile(path)
}

// SaveDataset writes a dataset in GFD text form.
func SaveDataset(path string, ds *Dataset) error {
	return graph.SaveDatasetFile(path, ds)
}
