// Package repro is a from-scratch Go reproduction of
//
//	Katsarou, Ntarmos, Triantafillou:
//	"Performance and Scalability of Indexed Subgraph Query Processing
//	Methods", PVLDB 8(12), 2015.
//
// It implements the six filter-and-verify subgraph query indexing methods
// the paper compares — Grapes, GraphGrepSX, CT-Index, gIndex, Tree+Δ, and
// gCode — together with every substrate they need (VF2 subgraph
// isomorphism, canonical labels, gSpan mining, spectral codes), the paper's
// dataset generators and query workloads, and a benchmark harness that
// regenerates every table and figure of the evaluation.
//
// # Quick start
//
//	ds := repro.NewSyntheticDataset(repro.SynthConfig{
//		NumGraphs: 100, MeanNodes: 50, MeanDensity: 0.05, NumLabels: 10,
//	})
//	idx := repro.NewIndex(repro.Grapes)
//	if err := idx.Build(context.Background(), ds); err != nil { ... }
//	proc := repro.NewProcessor(idx, ds)
//	res, err := proc.Query(q) // res.Answers holds the matching graph IDs
//
// The underlying packages remain importable for finer control:
// internal/core defines the Method contract, internal/bench the experiment
// harness, and one package per indexing method holds its implementation.
package repro

import (
	"context"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/subiso"
	"repro/internal/workload"
)

// Re-exported model types.
type (
	// Graph is a vertex-labelled undirected graph.
	Graph = graph.Graph
	// Dataset is an ordered collection of graphs with a shared label space.
	Dataset = graph.Dataset
	// Label is an interned vertex label.
	Label = graph.Label
	// ID identifies a graph within a dataset.
	ID = graph.ID
	// IDSet is a sorted set of graph IDs (candidate/answer sets).
	IDSet = graph.IDSet
	// Stats summarizes a dataset (Table 1 characteristics).
	Stats = graph.Stats

	// Method is one indexed subgraph query processing method.
	Method = core.Method
	// Processor runs the filter-and-verify pipeline over a built Method.
	Processor = core.Processor
	// QueryResult reports one query's candidates, answers, and timings.
	QueryResult = core.QueryResult
	// BuildStats reports on index construction.
	BuildStats = core.BuildStats
	// BatchOptions configures Processor.QueryBatch, the parallel workload
	// runner.
	BatchOptions = core.BatchOptions
	// BatchResult is one entry of a QueryBatch outcome.
	BatchResult = core.BatchResult
	// WorkloadSummary aggregates a batch into the paper's workload metrics.
	WorkloadSummary = core.WorkloadSummary

	// SynthConfig parameterizes the GraphGen-style synthetic generator.
	SynthConfig = gen.SynthConfig
	// RealConfig parameterizes the real-dataset simulators.
	RealConfig = gen.RealConfig
	// WorkloadConfig parameterizes random-walk query generation.
	WorkloadConfig = workload.Config

	// MethodID names one of the six methods.
	MethodID = bench.MethodID
	// Experiment describes one figure-regenerating benchmark run.
	Experiment = bench.Experiment
	// Scale selects the bench/default/paper grid sizes.
	Scale = bench.Scale
)

// The six methods compared by the paper.
const (
	Grapes    = bench.Grapes
	GGSX      = bench.GGSX
	CTIndex   = bench.CTIndex
	GIndex    = bench.GIndex
	TreeDelta = bench.TreeDelta
	GCode     = bench.GCode
)

// Table 1 dataset simulator presets.
var (
	AIDS = gen.AIDS
	PDBS = gen.PDBS
	PCM  = gen.PCM
	PPI  = gen.PPI
)

// NewIndex returns an unbuilt index of the given method with the paper's
// §4.1 default parameters. It panics on an unknown method id; use
// bench.NewMethod for error-returning construction or per-method Options.
func NewIndex(id MethodID) Method {
	m, err := bench.NewMethod(id, bench.MethodLimits{})
	if err != nil {
		panic(err)
	}
	return m
}

// NewProcessor wraps a built method and its dataset into a query processor.
func NewProcessor(m Method, ds *Dataset) *Processor {
	return core.NewProcessor(m, ds)
}

// NewSyntheticDataset generates a synthetic dataset per §4.2.
func NewSyntheticDataset(cfg SynthConfig) *Dataset {
	return gen.Synthetic(cfg)
}

// NewRealisticDataset generates a simulated real dataset matched to Table 1
// statistics; see the AIDS, PDBS, PCM, PPI presets and RealConfig.Scaled.
func NewRealisticDataset(cfg RealConfig) *Dataset {
	return gen.Realistic(cfg)
}

// GenerateQueries extracts a random-walk query workload per §4.3.
func GenerateQueries(ds *Dataset, cfg WorkloadConfig) ([]*Graph, error) {
	return workload.Generate(ds, cfg)
}

// IsSubgraph tests q ⊆ g directly with VF2 — the naive no-index baseline.
func IsSubgraph(q, g *Graph) bool {
	return subiso.Exists(q, g)
}

// BruteForceAnswers scans the whole dataset with VF2, the paper's naive
// method and this repository's ground truth.
func BruteForceAnswers(ctx context.Context, ds *Dataset, q *Graph) (IDSet, error) {
	return core.BruteForceAnswers(ctx, ds, q)
}

// FalsePositiveRatio computes equation (3) over a workload's candidate and
// answer sets.
func FalsePositiveRatio(candidates, answers []IDSet) float64 {
	return workload.FalsePositiveRatio(candidates, answers)
}

// Summarize aggregates a QueryBatch outcome into workload-level metrics.
func Summarize(results []BatchResult) WorkloadSummary {
	return core.Summarize(results)
}

// SaveIndex persists a built index to a file. All six methods implement
// core.Persistable, so an expensive build can be paid once per dataset.
func SaveIndex(path string, m Method) error {
	p, ok := m.(core.Persistable)
	if !ok {
		return fmt.Errorf("repro: %s does not support persistence", m.Name())
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.SaveIndex(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadIndex restores a previously saved index of the given method over the
// dataset it was built from.
func LoadIndex(path string, id MethodID, ds *Dataset) (Method, error) {
	m := NewIndex(id)
	p, ok := m.(core.Persistable)
	if !ok {
		return nil, fmt.Errorf("repro: %s does not support persistence", m.Name())
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := p.LoadIndex(f, ds); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadDataset reads a GFD text dataset from a file.
func LoadDataset(path string) (*Dataset, error) {
	return graph.LoadDatasetFile(path)
}

// SaveDataset writes a dataset in GFD text form.
func SaveDataset(path string, ds *Dataset) error {
	return graph.SaveDatasetFile(path, ds)
}
