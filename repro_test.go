package repro_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func exampleDataset() *repro.Dataset {
	return repro.NewSyntheticDataset(repro.SynthConfig{
		NumGraphs: 30, MeanNodes: 15, MeanDensity: 0.2, NumLabels: 4, Seed: 5,
	})
}

func TestFacadeEndToEnd(t *testing.T) {
	ds := exampleDataset()
	queries, err := repro.GenerateQueries(ds, repro.WorkloadConfig{
		NumQueries: 5, QueryEdges: 6, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []repro.MethodID{repro.Grapes, repro.GGSX, repro.CTIndex,
		repro.GIndex, repro.TreeDelta, repro.GCode} {
		idx := repro.NewIndex(id)
		if err := idx.Build(context.Background(), ds); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		proc := repro.NewProcessor(idx, ds)
		for i, q := range queries {
			res, err := proc.Query(q)
			if err != nil {
				t.Fatalf("%s query %d: %v", id, i, err)
			}
			truth, err := repro.BruteForceAnswers(context.Background(), ds, q)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Answers.Equal(truth) {
				t.Errorf("%s query %d: answers diverge from brute force", id, i)
			}
		}
	}
}

func TestEngineFacade(t *testing.T) {
	ds := exampleDataset()
	queries, err := repro.GenerateQueries(ds, repro.WorkloadConfig{
		NumQueries: 3, QueryEdges: 5, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	eng, err := repro.Open(ctx, ds, repro.WithSpec("ctindex:fingerprintBits=1024"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i, q := range queries {
		res, err := eng.Query(ctx, q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		truth, err := repro.BruteForceAnswers(ctx, ds, q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Answers.Equal(truth) {
			t.Errorf("query %d: engine answers diverge from brute force", i)
		}
		var streamed repro.IDSet
		for id, err := range repro.Stream(ctx, eng.Method(), ds, q) {
			if err != nil {
				t.Fatalf("stream %d: %v", i, err)
			}
			streamed = append(streamed, id)
		}
		if !streamed.Equal(truth) {
			t.Errorf("query %d: streamed answers diverge from brute force", i)
		}
	}
}

func TestNewErrorsOnBadSpec(t *testing.T) {
	if _, err := repro.New("nope"); err == nil {
		t.Fatalf("New(nope): want error")
	}
	if _, err := repro.New("grapes:bogus=1"); err == nil {
		t.Fatalf("New(grapes:bogus=1): want error")
	}
	if len(repro.Methods()) < 7 {
		t.Fatalf("Methods() = %d entries, want >= 7", len(repro.Methods()))
	}
}

func TestNewIndexPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic for unknown method")
		}
	}()
	repro.NewIndex(repro.MethodID("nope"))
}

func TestIsSubgraph(t *testing.T) {
	g := &repro.Graph{}
	a := g.AddVertex(1)
	b := g.AddVertex(2)
	g.MustAddEdge(a, b)
	q := &repro.Graph{}
	q.AddVertex(2)
	if !repro.IsSubgraph(q, g) {
		t.Errorf("single vertex not found")
	}
	q2 := &repro.Graph{}
	q2.AddVertex(3)
	if repro.IsSubgraph(q2, g) {
		t.Errorf("absent label matched")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := exampleDataset()
	path := filepath.Join(t.TempDir(), "ds.gfd")
	if err := repro.SaveDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := repro.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("round trip lost graphs: %d vs %d", got.Len(), ds.Len())
	}
	s1, s2 := ds.ComputeStats(), got.ComputeStats()
	if s1.AvgEdges != s2.AvgEdges || s1.AvgNodes != s2.AvgNodes {
		t.Fatalf("round trip changed stats")
	}
}

func TestFalsePositiveRatioFacade(t *testing.T) {
	cands := []repro.IDSet{{1, 2}, {3}}
	ans := []repro.IDSet{{1}, {3}}
	if got := repro.FalsePositiveRatio(cands, ans); got != 0.25 {
		t.Fatalf("FP = %v, want 0.25", got)
	}
}

// Example demonstrates the basic index-and-query flow; it doubles as the
// package documentation example.
func Example() {
	ds := repro.NewSyntheticDataset(repro.SynthConfig{
		NumGraphs: 20, MeanNodes: 12, MeanDensity: 0.25, NumLabels: 3, Seed: 9,
	})
	idx := repro.NewIndex(repro.GGSX)
	if err := idx.Build(context.Background(), ds); err != nil {
		log.Fatal(err)
	}
	queries, err := repro.GenerateQueries(ds, repro.WorkloadConfig{
		NumQueries: 1, QueryEdges: 4, Seed: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	proc := repro.NewProcessor(idx, ds)
	res, err := proc.Query(queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Answers) > 0 && len(res.Candidates) >= len(res.Answers))
	// Output: true
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
