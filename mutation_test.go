package repro_test

import (
	"context"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/graph"
)

// mutOp is one step of a deterministic mutation script: a removal of a
// then-live id, or the addition of a pool graph. Each replay passes its
// own shallow copy of the added graph, so scripts can run against several
// engines and dataset copies.
type mutOp struct {
	remove repro.ID
	add    *repro.Graph // nil for removals
}

func mutationBase(seed int64) *repro.Dataset {
	return repro.NewSyntheticDataset(repro.SynthConfig{
		NumGraphs: 20, MeanNodes: 12, MeanDensity: 0.18, NumLabels: 4, Seed: seed,
	})
}

// mutationSpec caps the mining methods' budgets like the engine tests do:
// tiny shards drive the frequent-mining support floor to 1, which explodes
// unbounded mining.
func mutationSpec(name string) string {
	switch name {
	case "gindex":
		return "gindex:maxPatterns=20000,supportRatio=0.2,maxFeatureSize=5"
	case "treedelta":
		return "treedelta:maxPatterns=20000,maxFeatureSize=5,querySupportToAdd=0.5"
	}
	return name
}

// mutationScript derives a random interleaved add/remove sequence against
// a dataset shaped like mutationBase: removal targets track the evolving
// live set, additions come from a synthetic pool in the same label
// universe.
func mutationScript(base *repro.Dataset, n int, seed int64) []mutOp {
	pool := repro.NewSyntheticDataset(repro.SynthConfig{
		NumGraphs: n, MeanNodes: 12, MeanDensity: 0.18, NumLabels: 4, Seed: seed + 99,
	})
	rng := rand.New(rand.NewSource(seed))
	live := base.LiveIDSet()
	nextID := repro.ID(base.Len())
	var ops []mutOp
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 && len(live) > 0 {
			j := rng.Intn(len(live))
			ops = append(ops, mutOp{remove: live[j]})
			live = append(live[:j], live[j+1:]...)
		} else {
			ops = append(ops, mutOp{add: pool.Graphs[i]})
			live = append(live, nextID)
			nextID++
		}
	}
	return ops
}

// applyScript replays the script through an engine's Mutable capability.
func applyScript(t *testing.T, ctx context.Context, m repro.Mutable, ops []mutOp) {
	t.Helper()
	for i, op := range ops {
		var err error
		if op.add != nil {
			_, err = m.AddGraph(ctx, op.add.ShallowWithID(0))
		} else {
			err = m.RemoveGraph(ctx, op.remove)
		}
		if err != nil {
			t.Fatalf("script op %d: %v", i, err)
		}
	}
}

// mutatedDataset builds the script's final dataset from scratch: a fresh
// identical base with the mutations applied directly.
func mutatedDataset(seed int64, ops []mutOp) *repro.Dataset {
	ds := mutationBase(seed)
	for _, op := range ops {
		if op.add != nil {
			ds.Add(op.add.ShallowWithID(0))
		} else {
			ds.Remove(op.remove)
		}
	}
	return ds
}

func streamedAnswers(t *testing.T, ctx context.Context, q repro.Querier, g *repro.Graph) repro.IDSet {
	t.Helper()
	var out repro.IDSet
	prev := repro.ID(-1)
	for id, err := range q.Stream(ctx, g) {
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if id <= prev {
			t.Fatalf("stream ids not ascending: %d after %d", id, prev)
		}
		prev = id
		out = append(out, id)
	}
	return out
}

// TestMutationParityEveryMethod is the mutation correctness contract:
// after a random interleaved add/remove sequence, every registered method
// — served flat, sharded N=4, and through the adaptive router — answers
// identically (one-shot and streamed) to a from-scratch engine built on
// the final dataset, which in turn matches brute force.
func TestMutationParityEveryMethod(t *testing.T) {
	const seed = 11
	ctx := context.Background()
	base := mutationBase(seed)
	ops := mutationScript(base, 8, seed+1)
	finalDS := mutatedDataset(seed, ops)
	queries, err := repro.GenerateQueries(finalDS, repro.WorkloadConfig{
		NumQueries: 5, QueryEdges: 4, Seed: seed + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth on the final dataset.
	truth := make([]repro.IDSet, len(queries))
	for i, q := range queries {
		if truth[i], err = repro.BruteForceAnswers(ctx, finalDS, q); err != nil {
			t.Fatal(err)
		}
	}

	check := func(t *testing.T, eng repro.Querier) {
		t.Helper()
		for i, q := range queries {
			res, err := eng.Query(ctx, q)
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			if !res.Answers.Equal(truth[i]) {
				t.Errorf("query %d: answers %v, from-scratch truth %v", i, res.Answers, truth[i])
			}
			if streamed := streamedAnswers(t, ctx, eng, q); !streamed.Equal(truth[i]) {
				t.Errorf("query %d: streamed %v, from-scratch truth %v", i, streamed, truth[i])
			}
		}
	}

	for _, d := range repro.Methods() {
		if d.OpenQuerier != nil {
			continue // composite entries (the router) are covered below
		}
		spec := mutationSpec(d.Name)
		t.Run("flat/"+spec, func(t *testing.T) {
			ds := mutationBase(seed)
			eng, err := repro.Open(ctx, ds, repro.WithSpec(spec))
			if err != nil {
				t.Fatal(err)
			}
			before := eng.Epoch()
			applyScript(t, ctx, eng, ops)
			if got := eng.Epoch(); got != before+uint64(len(ops)) {
				t.Errorf("epoch %d after %d mutations from %d", got, len(ops), before)
			}
			// From-scratch engine on the final dataset: the parity target.
			fresh, err := repro.Open(ctx, finalDS, repro.WithSpec(spec))
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range queries {
				want, err := fresh.Query(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				if !want.Answers.Equal(truth[i]) {
					t.Fatalf("from-scratch engine diverges from brute force on query %d", i)
				}
			}
			check(t, eng)
		})
		t.Run("sharded/"+spec, func(t *testing.T) {
			ds := mutationBase(seed)
			eng, err := repro.OpenSharded(ctx, ds, 4, repro.WithSpec(spec))
			if err != nil {
				t.Fatal(err)
			}
			applyScript(t, ctx, eng, ops)
			check(t, eng)
		})
	}

	t.Run("router", func(t *testing.T) {
		ds := mutationBase(seed)
		m, err := repro.OpenRouted(ctx, ds, repro.RouterConfig{
			Methods: []string{"grapes", "ggsx", "gcode"},
			Options: repro.RouterOptions{Policy: "learned", Epsilon: 0.3, Seed: 7},
		})
		if err != nil {
			t.Fatal(err)
		}
		applyScript(t, ctx, m, ops)
		check(t, m)
	})
}

// TestRemoveReAddRegression pins the tombstone contract end to end for
// every method: removing a known answer makes it disappear from
// Candidates and Answers immediately; re-adding an identical graph makes
// it reappear under its new id (ids are never reused).
func TestRemoveReAddRegression(t *testing.T) {
	const seed = 31
	ctx := context.Background()
	for _, d := range repro.Methods() {
		if d.OpenQuerier != nil {
			continue
		}
		t.Run(d.Name, func(t *testing.T) {
			ds := mutationBase(seed)
			eng, err := repro.Open(ctx, ds, repro.WithSpec(mutationSpec(d.Name)))
			if err != nil {
				t.Fatal(err)
			}
			queries, err := repro.GenerateQueries(ds, repro.WorkloadConfig{
				NumQueries: 1, QueryEdges: 4, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			q := queries[0]
			res, err := eng.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Answers) == 0 {
				t.Fatal("walk-extracted query must have at least one answer")
			}
			victim := res.Answers[0]
			victimGraph := ds.Graph(victim).Clone()

			if err := eng.RemoveGraph(ctx, victim); err != nil {
				t.Fatal(err)
			}
			res, err = eng.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Answers.Contains(victim) || res.Candidates.Contains(victim) {
				t.Fatalf("removed graph %d still surfaces (candidates %v, answers %v)",
					victim, res.Candidates, res.Answers)
			}
			if streamed := streamedAnswers(t, ctx, eng, q); streamed.Contains(victim) {
				t.Fatalf("removed graph %d still streams", victim)
			}
			if err := eng.RemoveGraph(ctx, victim); err == nil {
				t.Error("double remove must fail")
			}

			newID, err := eng.AddGraph(ctx, victimGraph)
			if err != nil {
				t.Fatal(err)
			}
			if newID == victim {
				t.Fatalf("re-add reused id %d", victim)
			}
			res, err = eng.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Answers.Contains(newID) {
				t.Fatalf("re-added graph %d absent from answers %v", newID, res.Answers)
			}
			if res.Answers.Contains(victim) {
				t.Fatalf("tombstoned id %d resurfaced after re-add", victim)
			}
		})
	}
}

// TestMutablePersistenceEpoch pins the epoch stamp in persisted index
// files: an index saved before a mutation must not restore after it, and
// one saved after a mutation must.
func TestMutablePersistenceEpoch(t *testing.T) {
	ctx := context.Background()
	path := t.TempDir() + "/idx"
	ds := mutationBase(41)
	eng, err := repro.Open(ctx, ds, repro.WithSpec("grapes"), repro.WithIndexPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RemoveGraph(ctx, 3); err != nil {
		t.Fatal(err)
	}

	// Same dataset state, no mutation: the file persisted by RemoveGraph
	// restores.
	ds2 := mutationBase(41)
	ds2.Remove(3)
	eng2, err := repro.Open(ctx, ds2, repro.WithSpec("grapes"), repro.WithIndexPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if !eng2.Restored() {
		t.Error("index persisted at the mutated epoch should restore for the same state")
	}

	// A dataset at a different epoch must rebuild, not restore.
	ds3 := mutationBase(41)
	eng3, err := repro.Open(ctx, ds3, repro.WithSpec("grapes"), repro.WithIndexPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if eng3.Restored() {
		t.Error("index persisted at another epoch must not restore")
	}

	// A different mutation history of the same length lands on the same
	// epoch; the structural version tag must still reject the restore.
	// (eng3 just overwrote the file at the base epoch, so re-remove 3 to
	// put the epoch-N+1 remove-3 index back on disk first.)
	if err := eng3.RemoveGraph(ctx, 3); err != nil {
		t.Fatal(err)
	}
	ds4 := mutationBase(41)
	ds4.Remove(7) // same epoch as ds3 after its remove, different content
	eng4, err := repro.Open(ctx, ds4, repro.WithSpec("grapes"), repro.WithIndexPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if eng4.Restored() {
		t.Error("index persisted for a different same-length mutation history must not restore")
	}
}

// TestOpenShardedOverMutatedDataset is the partition-tombstone regression:
// opening a sharded engine over a dataset that was already mutated must
// not resurrect removed graphs in shard sub-datasets.
func TestOpenShardedOverMutatedDataset(t *testing.T) {
	ctx := context.Background()
	ds := mutationBase(71)
	queries, err := repro.GenerateQueries(ds, repro.WorkloadConfig{NumQueries: 3, QueryEdges: 4, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	ds.Remove(2)
	ds.Remove(9)
	s, err := repro.OpenSharded(ctx, ds, 4, repro.WithSpec("grapes"))
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := repro.BruteForceAnswers(ctx, ds, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Answers.Equal(want) {
			t.Errorf("query %d over pre-mutated dataset: answers %v, want %v", i, got.Answers, want)
		}
		if got.Answers.Contains(2) || got.Answers.Contains(9) {
			t.Errorf("query %d resurrected a removed graph: %v", i, got.Answers)
		}
	}
}

// TestRouterMutationConsistency ensures the router's feature extractor
// tracks mutations: a label first interned by an added graph classifies as
// rarest instead of falling out of range, and routing still answers
// correctly for queries over it.
func TestRouterMutationConsistency(t *testing.T) {
	ctx := context.Background()
	ds := mutationBase(53)
	m, err := repro.OpenRouted(ctx, ds, repro.RouterConfig{
		Methods: []string{"grapes", "ggsx", "gcode"},
		Options: repro.RouterOptions{Policy: "static"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A graph carrying a label the dataset has never seen.
	freshLabel := graph.Label(int32(ds.MaxLabel()) + 5)
	g := graph.New(0)
	a := g.AddVertex(freshLabel)
	b := g.AddVertex(freshLabel)
	g.MustAddEdge(a, b)
	q := g.Clone()

	f := m.Extract(q)
	if f.MinLabelFreq != 0 {
		t.Errorf("unseen label frequency = %v, want 0 (rarest)", f.MinLabelFreq)
	}
	id, err := m.AddGraph(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	f = m.Extract(q)
	if f.MinLabelFreq <= 0 {
		t.Errorf("extractor did not refresh after mutation: freq %v", f.MinLabelFreq)
	}
	res, err := m.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answers.Contains(id) {
		t.Errorf("query over the added fresh-label graph missed it: %v", res.Answers)
	}
}

// TestShardedMutationPersistence: a mutated sharded engine rewrites only
// the owning shard's file plus the manifest, and restores cleanly.
func TestShardedMutationPersistence(t *testing.T) {
	ctx := context.Background()
	base := t.TempDir() + "/shards"
	ds := mutationBase(61)
	s, err := repro.OpenSharded(ctx, ds, 4, repro.WithSpec("ggsx"), repro.WithIndexPath(base))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveGraph(ctx, 2); err != nil {
		t.Fatal(err)
	}
	pool := repro.NewSyntheticDataset(repro.SynthConfig{
		NumGraphs: 1, MeanNodes: 10, MeanDensity: 0.2, NumLabels: 4, Seed: 62,
	})
	if _, err := s.AddGraph(ctx, pool.Graphs[0].ShallowWithID(0)); err != nil {
		t.Fatal(err)
	}

	ds2 := mutationBase(61)
	ds2.Remove(2)
	pool2 := repro.NewSyntheticDataset(repro.SynthConfig{
		NumGraphs: 1, MeanNodes: 10, MeanDensity: 0.2, NumLabels: 4, Seed: 62,
	})
	ds2.Add(pool2.Graphs[0].ShallowWithID(0))
	s2, err := repro.OpenSharded(ctx, ds2, 4, repro.WithSpec("ggsx"), repro.WithIndexPath(base))
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Restored() {
		t.Error("mutated sharded index should restore at the mutated epoch")
	}
	queries, err := repro.GenerateQueries(ds2, repro.WorkloadConfig{NumQueries: 3, QueryEdges: 4, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := repro.BruteForceAnswers(ctx, ds2, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s2.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Answers.Equal(want) {
			t.Errorf("restored mutated shards: query %d answers %v, want %v", i, got.Answers, want)
		}
	}
}
