#!/usr/bin/env bash
# End-to-end cluster smoke: a coordinator and three shard nodes on a
# generated micro-dataset. Runs a mixed workload (queries + a removal),
# kills a node and asserts the service answers with partial-result
# flagging (never silently), then restarts the node and asserts full
# answers come back. Along the way it scrapes /metrics on the coordinator
# and nodes (per-method latency histogram, fan-out counters, node request
# counters), round-trips a trace through the whole cluster, and checks the
# flat server's cache-hit counter.
#
# Usage: scripts/cluster_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
COORD=127.0.0.1:7600
N0=127.0.0.1:7601
N1=127.0.0.1:7602
N2=127.0.0.1:7603

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_ready() { # url timeout_s
  local url=$1 deadline=$(( $(date +%s) + $2 ))
  until python3 -c "import urllib.request,sys
try: sys.exit(0 if urllib.request.urlopen('$url', timeout=1).status==200 else 1)
except Exception: sys.exit(1)"; do
    if [ "$(date +%s)" -ge "$deadline" ]; then
      echo "timeout waiting for $url" >&2
      return 1
    fi
    sleep 0.3
  done
}

echo "== build"
go build -o "$WORK/graphgen" ./cmd/graphgen
go build -o "$WORK/gquery" ./cmd/gquery
go build -o "$WORK/sqnode" ./cmd/sqnode
go build -o "$WORK/sqserve" ./cmd/sqserve
go build -o "$WORK/sqtop" ./cmd/sqtop

echo "== generate micro-dataset"
"$WORK/graphgen" -graphs 40 -nodes 20 -density 0.1 -labels 5 -seed 7 \
  -o "$WORK/data.gfd" -queries 6 -qsize 4 -qo "$WORK/queries.gfd"

cat > "$WORK/manifest.json" <<EOF
{
  "shards": 4,
  "replication": 1,
  "nodes": [
    {"name": "n0", "addr": "http://$N0"},
    {"name": "n1", "addr": "http://$N1"},
    {"name": "n2", "addr": "http://$N2"}
  ]
}
EOF

start_node() { # name addr — leaves the pid in LAST_PID
  "$WORK/sqnode" -data "$WORK/data.gfd" -manifest "$WORK/manifest.json" \
    -name "$1" -method grapes -addr "${2#127.0.0.1}" >>"$WORK/$1.log" 2>&1 &
  LAST_PID=$!
  PIDS+=("$LAST_PID")
}

echo "== start nodes"
start_node n0 "$N0"
start_node n1 "$N1"
N1_PID=$LAST_PID
start_node n2 "$N2"
wait_ready "http://$N0/readyz" 60
wait_ready "http://$N1/readyz" 60
wait_ready "http://$N2/readyz" 60

echo "== start coordinator"
"$WORK/sqserve" -cluster "$WORK/manifest.json" -addr "${COORD#127.0.0.1}" \
  -probe-interval 300ms -slo 5s >"$WORK/coord.log" 2>&1 &
PIDS+=($!)
wait_ready "http://$COORD/readyz" 60

# assert_metric url pattern: the series must be present (and, with a
# trailing " N" in the pattern, at that value).
assert_metric() { # url grep-pattern label
  # Fetch before grepping: `curl | grep -q` under pipefail fails spuriously
  # once the body outgrows the pipe buffer (grep exits at the first match,
  # curl dies on EPIPE).
  local body
  body=$(curl -fsS "$1/metrics")
  if ! grep -Eq "$2" <<<"$body"; then
    echo "FAIL: $3 — no series matching '$2' at $1/metrics" >&2
    head -40 <<<"$body" >&2 || true
    exit 1
  fi
}

echo "== mixed workload on the healthy cluster (queries + a removal)"
OUT=$("$WORK/gquery" -remote "http://$COORD" -queries "$WORK/queries.gfd" -remove 3)
echo "$OUT"
if echo "$OUT" | grep -q "partial"; then
  echo "FAIL: healthy cluster answered partially" >&2
  exit 1
fi

echo "== scrape /metrics on coordinator and nodes"
assert_metric "http://$COORD" 'sq_query_duration_seconds_count\{method="[Gg]rapes[^"]*"\} [1-9]' "coordinator per-method query histogram"
assert_metric "http://$COORD" 'sq_cluster_requests_total\{kind="query"\} [1-9]' "coordinator query counter"
assert_metric "http://$COORD" 'sq_cluster_failovers_total' "coordinator failover counter exposed"
for n in "$N0" "$N1" "$N2"; do
  assert_metric "http://$n" 'sq_node_requests_total\{kind="query"\} [1-9]' "node query counter on $n"
  assert_metric "http://$n" 'sq_query_duration_seconds_count\{method="[Gg]rapes[^"]*"\} [1-9]' "node per-method query histogram on $n"
done

echo "== federated scrape: per-node labels and _agg sums on /metrics/cluster"
curl -fsS "http://$COORD/metrics/cluster" >"$WORK/federated.txt"
for n in "$N0" "$N1" "$N2"; do
  if ! grep -Eq "sq_node_requests_total\{kind=\"query\",node=\"http://$n\"\} [1-9]" "$WORK/federated.txt"; then
    echo "FAIL: federated scrape has no sq_node_requests_total row labeled node=http://$n" >&2
    grep sq_node_requests_total "$WORK/federated.txt" >&2 || true
    exit 1
  fi
done
if ! grep -q 'sq_cluster_requests_total{kind="query",node="coordinator"}' "$WORK/federated.txt"; then
  echo "FAIL: federated scrape has no coordinator-labeled families" >&2
  exit 1
fi
python3 - "$WORK/federated.txt" <<'PY'
import re, sys
per, agg = 0, None
for line in open(sys.argv[1]):
    if re.match(r'sq_node_requests_total\{kind="query",node="[^"]+"\} ', line):
        per += int(line.rsplit(" ", 1)[1])
    elif line.startswith('sq_node_requests_total_agg{kind="query"} '):
        agg = int(line.rsplit(" ", 1)[1])
assert agg is not None, "no sq_node_requests_total_agg family in the federated scrape"
assert per > 0 and agg == per, f"_agg {agg} != per-node sum {per}"
print(f"OK: sq_node_requests_total_agg {agg} == sum of per-node rows")
PY

echo "== sqtop -once -json against the live coordinator"
"$WORK/sqtop" -target "http://$COORD" -once -json >"$WORK/sqtop.json"
python3 - "$WORK/sqtop.json" <<'PY'
import json, math, sys
snap = json.load(open(sys.argv[1]))  # json.load rejects NaN only if we check
def walk(x):
    if isinstance(x, float):
        assert math.isfinite(x), f"non-finite value in sqtop output: {x}"
    elif isinstance(x, dict):
        for v in x.values(): walk(v)
    elif isinstance(x, list):
        for v in x: walk(v)
walk(snap)
assert snap["cluster"], "sqtop did not detect the federation endpoint"
assert len(snap["nodes"]) == 3, f"sqtop sees {len(snap['nodes'])} nodes, want 3"
for m in snap["methods"]:
    for q in ("p50_ms", "p95_ms", "p99_ms"):
        assert math.isfinite(m[q]), f"{q} not finite for {m['method']}"
print("OK: sqtop -once -json is valid JSON, all quantiles finite,",
      len(snap["nodes"]), "nodes visible")
PY

echo "== /health/score is ok on the healthy cluster"
python3 -c "import json,urllib.request,sys
rep = json.load(urllib.request.urlopen('http://$COORD/health/score', timeout=5))
assert rep['status'] == 'ok', f'healthy cluster scored {rep}'
print('OK: health', rep['status'])"

echo "== round-trip a trace through the cluster"
TRACE_OUT=$("$WORK/gquery" -remote "http://$COORD" -queries "$WORK/queries.gfd" -trace)
if ! echo "$TRACE_OUT" | grep -q "cluster-query"; then
  echo "FAIL: gquery -trace shows no coordinator root span" >&2
  echo "$TRACE_OUT" >&2
  exit 1
fi
if ! echo "$TRACE_OUT" | grep -q "node-query"; then
  echo "FAIL: gquery -trace shows no grafted node subtree — the trace id did not cross the node hop" >&2
  echo "$TRACE_OUT" >&2
  exit 1
fi

echo "== flat server cache-hit counter (the coordinator has no cache)"
FLAT=127.0.0.1:7610
"$WORK/sqserve" -data "$WORK/data.gfd" -method grapes -addr "${FLAT#127.0.0.1}"   >"$WORK/flat.log" 2>&1 &
PIDS+=($!)
wait_ready "http://$FLAT/readyz" 60
"$WORK/gquery" -remote "http://$FLAT" -queries "$WORK/queries.gfd" >/dev/null
"$WORK/gquery" -remote "http://$FLAT" -queries "$WORK/queries.gfd" >/dev/null
assert_metric "http://$FLAT" 'sq_cache_hits_total [1-9]' "flat server cache hits after repeated workload"
assert_metric "http://$FLAT" 'sq_query_duration_seconds_count\{method="[Gg]rapes[^"]*"\} [1-9]' "flat server per-method query histogram"

echo "== kill n1 and require flagged partial answers"
kill -9 "$N1_PID"
OUT=$("$WORK/gquery" -remote "http://$COORD" -queries "$WORK/queries.gfd")
echo "$OUT"
if ! echo "$OUT" | grep -q "partial"; then
  echo "FAIL: node dead but no partial flag surfaced — a silent truncation" >&2
  exit 1
fi
assert_metric "http://$COORD" 'sq_cluster_partials_total [1-9]' "coordinator partials counter after node loss"

echo "== /health/score degrades and names the dead node; the federated scrape survives"
deadline=$(( $(date +%s) + 15 ))
until python3 -c "import json,urllib.request,sys
rep = json.load(urllib.request.urlopen('http://$COORD/health/score', timeout=5))
member = next((c for c in rep['checks'] if c['name'] == 'membership'), None)
ok = rep['status'] != 'ok' and member and member['status'] != 'ok' and 'n1' in member['reason']
sys.exit(0 if ok else 1)"; do
  if [ "$(date +%s)" -ge "$deadline" ]; then
    echo "FAIL: health never left ok (naming n1) after the node kill" >&2
    curl -fsS "http://$COORD/health/score" >&2 || true
    exit 1
  fi
  sleep 0.3
done
python3 -c "import json,urllib.request
rep = json.load(urllib.request.urlopen('http://$COORD/health/score', timeout=5))
member = next(c for c in rep['checks'] if c['name'] == 'membership')
print('OK: health', rep['status'], '--', member['reason'])"
curl -fsS "http://$COORD/metrics/cluster" >"$WORK/federated-degraded.txt"
if ! grep -Eq "sq_federate_node_up\{node=\"http://$N1\",name=\"n1\"\} 0" "$WORK/federated-degraded.txt"; then
  echo "FAIL: dead node n1 has no sq_federate_node_up 0 row in the federated scrape" >&2
  grep sq_federate_node_up "$WORK/federated-degraded.txt" >&2 || true
  exit 1
fi
if ! grep -Eq "sq_federate_failed_nodes\{node=\"coordinator\"\} [1-9]" "$WORK/federated-degraded.txt"; then
  echo "FAIL: sq_federate_failed_nodes did not count the dead node" >&2
  exit 1
fi

echo "== restart n1 and require full answers again"
start_node n1 "$N1"
N1_PID=$LAST_PID
wait_ready "http://$N1/readyz" 60
# Let the coordinator's membership probe see the node return.
deadline=$(( $(date +%s) + 30 ))
until python3 -c "import json,urllib.request,sys
st = json.load(urllib.request.urlopen('http://$COORD/cluster', timeout=2))
sys.exit(0 if all(n['up'] and not n.get('stale') for n in st['nodes']) else 1)"; do
  if [ "$(date +%s)" -ge "$deadline" ]; then
    echo "FAIL: coordinator never saw n1 recover" >&2
    exit 1
  fi
  sleep 0.5
done
OUT=$("$WORK/gquery" -remote "http://$COORD" -queries "$WORK/queries.gfd")
echo "$OUT"
if echo "$OUT" | grep -q "partial"; then
  echo "FAIL: cluster still partial after the node recovered" >&2
  exit 1
fi
python3 -c "import json,urllib.request
rep = json.load(urllib.request.urlopen('http://$COORD/health/score', timeout=5))
assert rep['status'] == 'ok', f'health still {rep[\"status\"]} after recovery: {rep}'
print('OK: health back to', rep['status'])"

echo "== cluster smoke PASS"
