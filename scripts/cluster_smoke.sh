#!/usr/bin/env bash
# End-to-end cluster smoke: a coordinator and three shard nodes on a
# generated micro-dataset. Runs a mixed workload (queries + a removal),
# kills a node and asserts the service answers with partial-result
# flagging (never silently), then restarts the node and asserts full
# answers come back.
#
# Usage: scripts/cluster_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
COORD=127.0.0.1:7600
N0=127.0.0.1:7601
N1=127.0.0.1:7602
N2=127.0.0.1:7603

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_ready() { # url timeout_s
  local url=$1 deadline=$(( $(date +%s) + $2 ))
  until python3 -c "import urllib.request,sys
try: sys.exit(0 if urllib.request.urlopen('$url', timeout=1).status==200 else 1)
except Exception: sys.exit(1)"; do
    if [ "$(date +%s)" -ge "$deadline" ]; then
      echo "timeout waiting for $url" >&2
      return 1
    fi
    sleep 0.3
  done
}

echo "== build"
go build -o "$WORK/graphgen" ./cmd/graphgen
go build -o "$WORK/gquery" ./cmd/gquery
go build -o "$WORK/sqnode" ./cmd/sqnode
go build -o "$WORK/sqserve" ./cmd/sqserve

echo "== generate micro-dataset"
"$WORK/graphgen" -graphs 40 -nodes 20 -density 0.1 -labels 5 -seed 7 \
  -o "$WORK/data.gfd" -queries 6 -qsize 4 -qo "$WORK/queries.gfd"

cat > "$WORK/manifest.json" <<EOF
{
  "shards": 4,
  "replication": 1,
  "nodes": [
    {"name": "n0", "addr": "http://$N0"},
    {"name": "n1", "addr": "http://$N1"},
    {"name": "n2", "addr": "http://$N2"}
  ]
}
EOF

start_node() { # name addr — leaves the pid in LAST_PID
  "$WORK/sqnode" -data "$WORK/data.gfd" -manifest "$WORK/manifest.json" \
    -name "$1" -method grapes -addr "${2#127.0.0.1}" >>"$WORK/$1.log" 2>&1 &
  LAST_PID=$!
  PIDS+=("$LAST_PID")
}

echo "== start nodes"
start_node n0 "$N0"
start_node n1 "$N1"
N1_PID=$LAST_PID
start_node n2 "$N2"
wait_ready "http://$N0/readyz" 60
wait_ready "http://$N1/readyz" 60
wait_ready "http://$N2/readyz" 60

echo "== start coordinator"
"$WORK/sqserve" -cluster "$WORK/manifest.json" -addr "${COORD#127.0.0.1}" \
  -probe-interval 300ms >"$WORK/coord.log" 2>&1 &
PIDS+=($!)
wait_ready "http://$COORD/readyz" 60

echo "== mixed workload on the healthy cluster (queries + a removal)"
OUT=$("$WORK/gquery" -remote "http://$COORD" -queries "$WORK/queries.gfd" -remove 3)
echo "$OUT"
if echo "$OUT" | grep -q "partial"; then
  echo "FAIL: healthy cluster answered partially" >&2
  exit 1
fi

echo "== kill n1 and require flagged partial answers"
kill -9 "$N1_PID"
OUT=$("$WORK/gquery" -remote "http://$COORD" -queries "$WORK/queries.gfd")
echo "$OUT"
if ! echo "$OUT" | grep -q "partial"; then
  echo "FAIL: node dead but no partial flag surfaced — a silent truncation" >&2
  exit 1
fi

echo "== restart n1 and require full answers again"
start_node n1 "$N1"
N1_PID=$LAST_PID
wait_ready "http://$N1/readyz" 60
# Let the coordinator's membership probe see the node return.
deadline=$(( $(date +%s) + 30 ))
until python3 -c "import json,urllib.request,sys
st = json.load(urllib.request.urlopen('http://$COORD/cluster', timeout=2))
sys.exit(0 if all(n['up'] and not n.get('stale') for n in st['nodes']) else 1)"; do
  if [ "$(date +%s)" -ge "$deadline" ]; then
    echo "FAIL: coordinator never saw n1 recover" >&2
    exit 1
  fi
  sleep 0.5
done
OUT=$("$WORK/gquery" -remote "http://$COORD" -queries "$WORK/queries.gfd")
echo "$OUT"
if echo "$OUT" | grep -q "partial"; then
  echo "FAIL: cluster still partial after the node recovered" >&2
  exit 1
fi

echo "== cluster smoke PASS"
